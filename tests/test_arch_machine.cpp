// Machine-model tests: GIC, generic timer, Core, Executor, monitor/PSCI,
// device tree, platform assembly.
#include <gtest/gtest.h>

#include <vector>

#include "arch/core.h"
#include "arch/devicetree.h"
#include "arch/exec.h"
#include "arch/irq_controller.h"
#include "arch/isa.h"
#include "arch/monitor.h"
#include "arch/platform.h"
#include "arch/timer.h"

namespace hpcsec::arch {
namespace {

// The ARM layout's timer ids, used throughout the fixtures below.
const IrqLayout& arm_irqs() { return IsaOps::get(Isa::kArm).irq; }

// --- IrqController (ARM/Gic backend via the generic interface) ---------------

struct GicFixture : ::testing::Test {
    std::unique_ptr<IrqController> irqc = IsaOps::get(Isa::kArm).make_irq_controller(4);
    IrqController& gic = *irqc;
    std::vector<std::pair<CoreId, int>> signals;

    void SetUp() override {
        gic.set_signal([this](CoreId c) { signals.emplace_back(c, 0); });
    }
};

TEST_F(GicFixture, SpiRoutesToTargetCore) {
    gic.enable_irq(40);
    gic.set_external_target(40, 2);
    gic.raise_external(40);
    ASSERT_EQ(signals.size(), 1u);
    EXPECT_EQ(signals[0].first, 2);
    EXPECT_EQ(gic.ack(2), 40);
}

TEST_F(GicFixture, DisabledIrqNotDeliverable) {
    gic.set_external_target(40, 1);
    gic.raise_external(40);  // not enabled
    EXPECT_FALSE(gic.has_deliverable(1));
    EXPECT_EQ(gic.ack(1), IrqController::kSpurious);
    gic.enable_irq(40);
    EXPECT_TRUE(gic.has_deliverable(1));
    EXPECT_EQ(gic.ack(1), 40);
}

TEST_F(GicFixture, PpiIsPerCore) {
    gic.enable_irq(arm_irqs().phys_timer);
    gic.raise_private(1, arm_irqs().phys_timer);
    EXPECT_TRUE(gic.has_deliverable(1));
    EXPECT_FALSE(gic.has_deliverable(0));
}

TEST_F(GicFixture, SgiTargetsSpecificCore) {
    gic.enable_irq(1);
    gic.send_ipi(3, 1);
    EXPECT_TRUE(gic.has_deliverable(3));
    EXPECT_EQ(gic.ack(3), 1);
}

TEST_F(GicFixture, AckOrderFollowsPriority) {
    gic.enable_irq(40);
    gic.enable_irq(41);
    gic.set_external_target(40, 0);
    gic.set_external_target(41, 0);
    gic.set_priority(41, 0x20);  // GIC: lower value = higher priority
    gic.set_priority(40, 0x80);
    gic.raise_external(40);
    gic.raise_external(41);
    EXPECT_EQ(gic.ack(0), 41);
    EXPECT_EQ(gic.ack(0), 40);
}

TEST_F(GicFixture, EoiClearsActiveAndResignals) {
    gic.enable_irq(40);
    gic.enable_irq(41);
    gic.set_external_target(40, 0);
    gic.set_external_target(41, 0);
    gic.raise_external(40);
    gic.raise_external(41);
    const int first = gic.ack(0);
    signals.clear();
    gic.eoi(0, first);
    EXPECT_EQ(signals.size(), 1u);  // still one pending
}

TEST_F(GicFixture, ClearPendingDropsIrq) {
    gic.enable_irq(40);
    gic.set_external_target(40, 0);
    gic.raise_external(40);
    gic.clear_pending(0, 40);
    EXPECT_EQ(gic.ack(0), IrqController::kSpurious);
}

TEST_F(GicFixture, RejectsBadIds) {
    EXPECT_THROW(gic.raise_external(3), std::invalid_argument);
    EXPECT_THROW(gic.raise_private(0, 40), std::invalid_argument);
    EXPECT_THROW(gic.send_ipi(0, 20), std::invalid_argument);
    EXPECT_THROW(gic.set_external_target(40, 9), std::invalid_argument);
}

// --- GenericTimer -------------------------------------------------------------

struct TimerFixture : ::testing::Test {
    sim::Engine engine;
    std::unique_ptr<IrqController> irqc = IsaOps::get(Isa::kArm).make_irq_controller(2);
    IrqController& gic = *irqc;
    GenericTimer timer{engine, gic, 0, arm_irqs()};
};

TEST_F(TimerFixture, FiresPhysPpiAtDeadline) {
    gic.enable_irq(arm_irqs().phys_timer);
    timer.set_deadline(TimerChannel::kPhys, 1000);
    engine.run_until(999);
    EXPECT_FALSE(gic.has_deliverable(0));
    engine.run_until(1000);
    EXPECT_TRUE(gic.has_deliverable(0));
    EXPECT_EQ(gic.ack(0), arm_irqs().phys_timer);
    EXPECT_EQ(timer.fired_count(TimerChannel::kPhys), 1u);
}

TEST_F(TimerFixture, VirtChannelIsIndependent) {
    gic.enable_irq(arm_irqs().virt_timer);
    timer.set_deadline(TimerChannel::kVirt, 500);
    engine.run_until(500);
    EXPECT_EQ(gic.ack(0), arm_irqs().virt_timer);
    EXPECT_EQ(timer.fired_count(TimerChannel::kPhys), 0u);
}

TEST_F(TimerFixture, CancelPreventsFiring) {
    gic.enable_irq(arm_irqs().phys_timer);
    timer.set_deadline(TimerChannel::kPhys, 1000);
    timer.cancel(TimerChannel::kPhys);
    engine.run_until(2000);
    EXPECT_EQ(timer.fired_count(TimerChannel::kPhys), 0u);
    EXPECT_FALSE(timer.armed(TimerChannel::kPhys));
}

TEST_F(TimerFixture, ReprogramMovesDeadline) {
    gic.enable_irq(arm_irqs().phys_timer);
    timer.set_deadline(TimerChannel::kPhys, 1000);
    timer.set_deadline(TimerChannel::kPhys, 2000);
    engine.run_until(1500);
    EXPECT_EQ(timer.fired_count(TimerChannel::kPhys), 0u);
    engine.run_until(2000);
    EXPECT_EQ(timer.fired_count(TimerChannel::kPhys), 1u);
}

TEST_F(TimerFixture, PastDeadlineFiresImmediately) {
    gic.enable_irq(arm_irqs().phys_timer);
    engine.after(100, [] {});
    engine.run();
    timer.set_deadline(TimerChannel::kPhys, 50);  // already passed
    engine.run();
    EXPECT_EQ(timer.fired_count(TimerChannel::kPhys), 1u);
}

// --- Executor -------------------------------------------------------------------

class FiniteWork : public Runnable {
public:
    explicit FiniteWork(double units, double cycles_per_unit = 1.0) : remaining_(units) {
        profile_.cycles_per_unit = cycles_per_unit;
    }
    [[nodiscard]] std::string_view label() const override { return "work"; }
    [[nodiscard]] double remaining_units() const override { return remaining_; }
    void advance(double units, sim::SimTime) override {
        remaining_ = units >= remaining_ ? 0 : remaining_ - units;
    }
    [[nodiscard]] const WorkProfile& profile() const override { return profile_; }
    [[nodiscard]] TranslationMode mode() const override { return mode_; }
    void on_interval(sim::SimTime s, sim::SimTime e) override {
        intervals.emplace_back(s, e);
    }

    WorkProfile profile_;
    TranslationMode mode_ = TranslationMode::kNative;
    double remaining_;
    std::vector<std::pair<sim::SimTime, sim::SimTime>> intervals;
};

struct ExecFixture : ::testing::Test {
    sim::Engine engine;
    PerfModel perf;
    Executor ex{engine, perf, 0};
};

TEST_F(ExecFixture, RunsToCompletion) {
    FiniteWork w(1000);
    Runnable* completed = nullptr;
    ex.set_on_complete([&](Runnable* r) { completed = r; });
    ex.begin(&w);
    engine.run();
    EXPECT_EQ(completed, &w);
    EXPECT_EQ(w.remaining_, 0.0);
    EXPECT_EQ(engine.now(), 1000u);
    EXPECT_EQ(ex.usage().work, 1000u);
}

TEST_F(ExecFixture, ChargeDelaysStart) {
    FiniteWork w(100);
    ex.charge(500);
    ex.begin(&w);
    engine.run();
    EXPECT_EQ(engine.now(), 600u);
    EXPECT_EQ(ex.usage().overhead, 500u);
    ASSERT_EQ(w.intervals.size(), 1u);
    EXPECT_EQ(w.intervals[0].first, 500u);
}

TEST_F(ExecFixture, ChargesStack) {
    FiniteWork w(100);
    ex.charge(200);
    ex.charge(300);
    ex.begin(&w);
    engine.run();
    EXPECT_EQ(engine.now(), 600u);
}

TEST_F(ExecFixture, PreemptChargesPartialProgress) {
    FiniteWork w(1000);
    ex.begin(&w);
    engine.after(400, [&] {
        Runnable* r = ex.preempt();
        EXPECT_EQ(r, &w);
    });
    engine.run();
    EXPECT_DOUBLE_EQ(w.remaining_, 600.0);
    EXPECT_EQ(ex.usage().work, 400u);
    EXPECT_FALSE(ex.occupied());
}

TEST_F(ExecFixture, PreemptDuringPendingBeginReturnsRunnable) {
    FiniteWork w(100);
    ex.charge(1000);
    ex.begin(&w);
    engine.after(10, [&] { EXPECT_EQ(ex.preempt(), &w); });
    engine.run_until(2000);
    EXPECT_DOUBLE_EQ(w.remaining_, 100.0);  // never started
}

TEST_F(ExecFixture, TransientConsumedBeforeProgress) {
    FiniteWork w(1000);
    ex.add_transient(250);
    ex.begin(&w);
    engine.run();
    EXPECT_EQ(engine.now(), 1250u);
    EXPECT_EQ(ex.usage().transient, 250u);
    EXPECT_EQ(ex.usage().work, 1000u);
}

TEST_F(ExecFixture, PreemptDuringTransientCarriesRemainder) {
    FiniteWork w(1000);
    ex.add_transient(500);
    ex.begin(&w);
    engine.after(200, [&] {
        ex.preempt();           // 200 of the 500-cycle transient consumed
        ex.begin(&w);           // rest carries into this chunk
    });
    engine.run();
    // Total = 500 transient + 1000 work.
    EXPECT_EQ(engine.now(), 1500u);
    EXPECT_DOUBLE_EQ(w.remaining_, 0.0);
}

TEST_F(ExecFixture, TwoStageModePricesNestedWalks) {
    FiniteWork native_w(1000);
    native_w.profile_.mem_refs_per_unit = 1.0;
    native_w.profile_.tlb_miss_rate = 0.5;
    FiniteWork virt_w = native_w;
    virt_w.mode_ = TranslationMode::kTwoStage;

    ex.begin(&native_w);
    engine.run();
    const sim::SimTime native_t = engine.now();

    Executor ex2(engine, perf, 1);
    ex2.begin(&virt_w);
    engine.run();
    const sim::SimTime virt_t = engine.now() - native_t;
    EXPECT_GT(virt_t, native_t);
    // Exact: per-unit native 1 + 0.5*35; two-stage 1 + 0.5*165.
    EXPECT_EQ(native_t, static_cast<sim::SimTime>(1000 * (1 + 0.5 * 35) + 1) - 1);
}

TEST_F(ExecFixture, RunForeverNeverCompletes) {
    FiniteWork w(1e30);
    bool completed = false;
    ex.set_on_complete([&](Runnable*) { completed = true; });
    ex.begin(&w);
    engine.run_until(1'000'000);
    EXPECT_FALSE(completed);
    EXPECT_TRUE(ex.running());
}

TEST_F(ExecFixture, BeginWhileRunningThrows) {
    FiniteWork a(1000), b(10);
    ex.begin(&a);
    EXPECT_THROW(ex.begin(&b), std::logic_error);
    EXPECT_THROW(ex.charge(10), std::logic_error);
}

TEST_F(ExecFixture, RepriceKeepsProgressExact) {
    FiniteWork w(1000);
    ex.begin(&w);
    engine.after(300, [&] { ex.reprice(); });
    engine.run();
    EXPECT_EQ(engine.now(), 1000u);
    EXPECT_DOUBLE_EQ(w.remaining_, 0.0);
}

TEST_F(ExecFixture, IntervalsReportedContiguously) {
    FiniteWork w(1000);
    ex.begin(&w);
    engine.after(400, [&] {
        ex.preempt();
        ex.charge(100);
        ex.begin(&w);
    });
    engine.run();
    ASSERT_EQ(w.intervals.size(), 2u);
    EXPECT_EQ(w.intervals[0], (std::pair<sim::SimTime, sim::SimTime>{0, 400}));
    EXPECT_EQ(w.intervals[1], (std::pair<sim::SimTime, sim::SimTime>{500, 1100}));
}

// --- SecureMonitor / PSCI --------------------------------------------------------

struct MonitorFixture : ::testing::Test {
    sim::Engine engine;
    PerfModel perf;
    std::unique_ptr<IrqController> irqc = IsaOps::get(Isa::kArm).make_irq_controller(4);
    IrqController& gic = *irqc;
    MemoryMap mem;
    std::vector<std::unique_ptr<Core>> cores;
    std::unique_ptr<SecureMonitor> monitor;

    void SetUp() override {
        mem.add_region({"ram", 0x4000'0000, 1ull << 20, RegionKind::kRam,
                        World::kNonSecure});
        std::vector<Core*> ptrs;
        for (int i = 0; i < 4; ++i) {
            cores.push_back(
                std::make_unique<Core>(engine, perf, gic, mem, i, arm_irqs()));
            ptrs.push_back(cores.back().get());
        }
        monitor = std::make_unique<SecureMonitor>(ptrs);
    }
};

TEST_F(MonitorFixture, CpuOnPowersAndEnters) {
    bool entered = false;
    EXPECT_EQ(monitor->cpu_on(2, [&](Core& c) {
        entered = true;
        EXPECT_EQ(c.id(), 2);
        EXPECT_EQ(c.el(), El::kEl2);
    }),
              PsciResult::kSuccess);
    EXPECT_TRUE(entered);
    EXPECT_TRUE(cores[2]->powered());
    EXPECT_EQ(monitor->powered_cores(), 1);
}

TEST_F(MonitorFixture, CpuOnTwiceFails) {
    EXPECT_EQ(monitor->cpu_on(1, nullptr), PsciResult::kSuccess);
    EXPECT_EQ(monitor->cpu_on(1, nullptr), PsciResult::kAlreadyOn);
}

TEST_F(MonitorFixture, CpuOffRequiresPowered) {
    EXPECT_EQ(monitor->cpu_off(1), PsciResult::kDenied);
    monitor->cpu_on(1, nullptr);
    EXPECT_EQ(monitor->cpu_off(1), PsciResult::kSuccess);
    EXPECT_FALSE(cores[1]->powered());
}

TEST_F(MonitorFixture, BadCoreIdRejected) {
    EXPECT_EQ(monitor->cpu_on(9, nullptr), PsciResult::kInvalidParams);
    EXPECT_EQ(monitor->cpu_off(-1), PsciResult::kInvalidParams);
}

TEST_F(MonitorFixture, SmcPsciVersion) {
    monitor->cpu_on(0, nullptr);
    const auto v = monitor->smc(*cores[0],
                                static_cast<std::uint32_t>(PsciFn::kVersion));
    EXPECT_EQ(v, (1 << 16) | 1);
}

TEST_F(MonitorFixture, SmcUnknownReturnsNotSupported) {
    monitor->cpu_on(0, nullptr);
    EXPECT_EQ(monitor->smc(*cores[0], 0xdeadbeef), -1);
}

TEST_F(MonitorFixture, RegisteredSmcServiceDispatches) {
    monitor->cpu_on(0, nullptr);
    monitor->register_smc(0xC2000001, [](Core&, std::uint64_t a, std::uint64_t b) {
        return static_cast<std::int64_t>(a + b);
    });
    EXPECT_EQ(monitor->smc(*cores[0], 0xC2000001, 2, 40), 42);
}

TEST_F(MonitorFixture, SystemOffPowersEverythingDown) {
    for (int i = 0; i < 4; ++i) monitor->cpu_on(i, nullptr);
    monitor->smc(*cores[0], static_cast<std::uint32_t>(PsciFn::kSystemOff));
    EXPECT_EQ(monitor->powered_cores(), 0);
}

TEST_F(MonitorFixture, WorldSwitchChangesCoreWorld) {
    monitor->cpu_on(0, nullptr);
    monitor->switch_world(*cores[0], World::kSecure);
    EXPECT_EQ(cores[0]->world(), World::kSecure);
}

// --- Core IRQ handling --------------------------------------------------------

TEST_F(MonitorFixture, MaskedCoreDefersIrqUntilUnmask) {
    monitor->cpu_on(0, nullptr);
    int taken = -1;
    cores[0]->set_irq_handler([&](int irq) { taken = irq; });
    gic.enable_irq(arm_irqs().phys_timer);
    gic.raise_private(0, arm_irqs().phys_timer);
    EXPECT_EQ(taken, -1);  // reset state: masked
    cores[0]->set_irq_masked(false);
    EXPECT_EQ(taken, arm_irqs().phys_timer);
}

TEST_F(MonitorFixture, PoweredOffCoreIgnoresIrqs) {
    int taken = 0;
    cores[0]->set_irq_handler([&](int) { ++taken; });
    cores[0]->set_irq_masked(false);
    gic.enable_irq(arm_irqs().phys_timer);
    gic.raise_private(0, arm_irqs().phys_timer);
    EXPECT_EQ(taken, 0);
}

TEST_F(MonitorFixture, HandlerDrainsAllPending) {
    monitor->cpu_on(0, nullptr);
    std::vector<int> taken;
    cores[0]->set_irq_handler([&](int irq) { taken.push_back(irq); });
    gic.enable_irq(1);
    gic.enable_irq(2);
    gic.send_ipi(0, 1);
    gic.send_ipi(0, 2);
    cores[0]->set_irq_masked(false);
    EXPECT_EQ(taken.size(), 2u);
}

// --- DeviceTree -------------------------------------------------------------------

TEST(DeviceTree, BuildAndQuery) {
    DtNode root("/");
    auto& cpus = root.add_child("cpus");
    auto& cpu0 = cpus.add_child("cpu@0");
    cpu0.set("reg", std::uint64_t{0});
    cpu0.set("compatible", std::string("arm,cortex-a53"));
    EXPECT_NE(root.find("cpus/cpu@0"), nullptr);
    EXPECT_EQ(root.find("cpus/cpu@0")->get_string("compatible"), "arm,cortex-a53");
    EXPECT_EQ(root.find("cpus/cpu@1"), nullptr);
}

TEST(DeviceTree, ArrayProperty) {
    DtNode n("memory");
    n.set("reg", std::vector<std::uint64_t>{0x4000'0000, 0x8000'0000});
    const auto reg = n.get_array("reg");
    ASSERT_TRUE(reg.has_value());
    EXPECT_EQ((*reg)[1], 0x8000'0000u);
    EXPECT_FALSE(n.get_u64("reg").has_value());  // type-safe accessors
}

TEST(DeviceTree, RemoveChild) {
    DtNode root("/");
    root.add_child("a");
    root.add_child("b");
    EXPECT_TRUE(root.remove_child("a"));
    EXPECT_FALSE(root.remove_child("a"));
    EXPECT_EQ(root.child("a"), nullptr);
    EXPECT_NE(root.child("b"), nullptr);
}

TEST(DeviceTree, ToStringIsStable) {
    DtNode n("soc");
    n.set("zeta", std::uint64_t{1});
    n.set("alpha", std::uint64_t{2});
    const std::string s = n.to_string();
    // Properties render in sorted key order for golden-file stability.
    EXPECT_LT(s.find("alpha"), s.find("zeta"));
}

// --- Platform ----------------------------------------------------------------------

TEST(Platform, PineA64Shape) {
    Platform p(PlatformConfig::pine_a64());
    EXPECT_EQ(p.ncores(), 4);
    EXPECT_EQ(p.mem().ram_bytes(), 2ull << 30);
    EXPECT_EQ(p.engine().clock().hz, 1'100'000'000u);
    EXPECT_NE(p.device_tree().find("cpus/cpu@3"), nullptr);
    EXPECT_NE(p.device_tree().find("soc/uart0"), nullptr);
}

TEST(Platform, QemuVirtShape) {
    Platform p(PlatformConfig::qemu_virt());
    EXPECT_EQ(p.mem().ram_bytes(), 4ull << 30);
    EXPECT_NE(p.device_tree().find("soc/virtio-net"), nullptr);
}

TEST(Platform, SecureCarveOutCreatesSecureRegion) {
    PlatformConfig cfg = PlatformConfig::pine_a64();
    cfg.secure_ram_bytes = 256ull << 20;
    Platform p(cfg);
    EXPECT_EQ(p.mem().ram_bytes(World::kSecure), 256ull << 20);
    EXPECT_EQ(p.mem().ram_bytes(), 2ull << 30);
}

TEST(Platform, RejectsOversizedSecureCarveOut) {
    PlatformConfig cfg = PlatformConfig::pine_a64();
    cfg.secure_ram_bytes = cfg.ram_bytes;
    EXPECT_THROW(Platform p(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace hpcsec::arch
