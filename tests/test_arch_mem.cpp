// Memory-system tests: MemoryMap, PageTable, Tlb, Mmu (one- and two-stage).
#include <gtest/gtest.h>

#include "arch/memory_map.h"
#include "arch/mmu.h"
#include "arch/page_table.h"
#include "arch/tlb.h"
#include "sim/rng.h"

namespace hpcsec::arch {
namespace {

constexpr PhysAddr kRamBase = 0x4000'0000;
constexpr std::uint64_t kRamSize = 256ull << 20;

MemoryMap make_map(std::uint64_t secure_bytes = 0) {
    MemoryMap m;
    m.add_region({"ram", kRamBase, kRamSize - secure_bytes, RegionKind::kRam,
                  World::kNonSecure});
    if (secure_bytes > 0) {
        m.add_region({"sram", kRamBase + kRamSize - secure_bytes, secure_bytes,
                      RegionKind::kRam, World::kSecure});
    }
    m.add_region({"uart", 0x01C2'8000, 0x1000, RegionKind::kMmio, World::kNonSecure});
    return m;
}

// --- MemoryMap ------------------------------------------------------------------

TEST(MemoryMap, RegionLookup) {
    MemoryMap m = make_map();
    EXPECT_TRUE(m.is_ram(kRamBase));
    EXPECT_TRUE(m.is_ram(kRamBase + kRamSize - 8));
    EXPECT_FALSE(m.is_ram(kRamBase + kRamSize));
    EXPECT_TRUE(m.is_mmio(0x01C2'8000));
    EXPECT_EQ(m.find_region(0xdead'beef'0000ull), nullptr);
}

TEST(MemoryMap, RejectsOverlappingRegions) {
    MemoryMap m = make_map();
    EXPECT_THROW(m.add_region({"dup", kRamBase + 0x1000, 0x1000, RegionKind::kRam,
                               World::kNonSecure}),
                 std::invalid_argument);
}

TEST(MemoryMap, RejectsUnalignedRegion) {
    MemoryMap m;
    EXPECT_THROW(
        m.add_region({"bad", 0x100, 0x1000, RegionKind::kRam, World::kNonSecure}),
        std::invalid_argument);
}

TEST(MemoryMap, RamBytesByWorld) {
    MemoryMap m = make_map(64ull << 20);
    EXPECT_EQ(m.ram_bytes(), kRamSize);
    EXPECT_EQ(m.ram_bytes(World::kSecure), 64ull << 20);
    EXPECT_EQ(m.ram_bytes(World::kNonSecure), kRamSize - (64ull << 20));
}

TEST(MemoryMap, AllocatesContiguousOwnedFrames) {
    MemoryMap m = make_map();
    const PhysAddr a = m.alloc_frames(16, 3, World::kNonSecure);
    EXPECT_TRUE(m.owned_span(a, 16 * kPageSize, 3));
    EXPECT_FALSE(m.owned_span(a, 17 * kPageSize, 3));
    EXPECT_EQ(m.allocated_frames(), 16u);
}

TEST(MemoryMap, AllocationsDoNotOverlap) {
    MemoryMap m = make_map();
    const PhysAddr a = m.alloc_frames(8, 1, World::kNonSecure);
    const PhysAddr b = m.alloc_frames(8, 2, World::kNonSecure);
    EXPECT_TRUE(a + 8 * kPageSize <= b || b + 8 * kPageSize <= a);
    EXPECT_TRUE(m.owned_span(a, 8 * kPageSize, 1));
    EXPECT_TRUE(m.owned_span(b, 8 * kPageSize, 2));
}

TEST(MemoryMap, FreeAndReuse) {
    MemoryMap m = make_map();
    const PhysAddr a = m.alloc_frames(8, 1, World::kNonSecure);
    m.free_frames(a, 8);
    EXPECT_EQ(m.allocated_frames(), 0u);
    const PhysAddr b = m.alloc_frames(8, 2, World::kNonSecure);
    EXPECT_EQ(a, b);  // first fit reuses the hole
}

TEST(MemoryMap, DoubleFreeThrows) {
    MemoryMap m = make_map();
    const PhysAddr a = m.alloc_frames(2, 1, World::kNonSecure);
    m.free_frames(a, 2);
    EXPECT_THROW(m.free_frames(a, 2), std::logic_error);
}

TEST(MemoryMap, SecureAllocationComesFromSecureRegion) {
    MemoryMap m = make_map(64ull << 20);
    const PhysAddr s = m.alloc_frames(4, 1, World::kSecure);
    EXPECT_EQ(m.world_of(s), World::kSecure);
}

TEST(MemoryMap, OutOfMemoryThrows) {
    MemoryMap m;
    m.add_region({"tiny", kRamBase, 4 * kPageSize, RegionKind::kRam,
                  World::kNonSecure});
    (void)m.alloc_frames(4, 1, World::kNonSecure);
    EXPECT_THROW(m.alloc_frames(1, 2, World::kNonSecure), std::runtime_error);
}

TEST(MemoryMap, StoreReadsBackWrites) {
    MemoryMap m = make_map();
    m.write64(kRamBase + 0x100, 0xdeadbeefcafef00dull, World::kNonSecure);
    EXPECT_EQ(m.read64(kRamBase + 0x100, World::kNonSecure), 0xdeadbeefcafef00dull);
    EXPECT_EQ(m.read64(kRamBase + 0x108, World::kNonSecure), 0u);  // zero default
}

TEST(MemoryMap, TrustZoneBlocksNonSecureAccess) {
    MemoryMap m = make_map(64ull << 20);
    const PhysAddr s = m.alloc_frames(1, 1, World::kSecure);
    m.write64(s, 42, World::kSecure);
    EXPECT_EQ(m.check_physical_access(s, World::kNonSecure), FaultKind::kSecurity);
    EXPECT_THROW((void)m.read64(s, World::kNonSecure), std::runtime_error);
    // Secure masters can reach both worlds.
    EXPECT_EQ(m.check_physical_access(s, World::kSecure), FaultKind::kNone);
    EXPECT_EQ(m.check_physical_access(kRamBase, World::kSecure), FaultKind::kNone);
}

TEST(MemoryMap, SetOwnerTransfersFrames) {
    MemoryMap m = make_map();
    const PhysAddr a = m.alloc_frames(4, 1, World::kNonSecure);
    m.set_owner(a, 4, 9);
    EXPECT_TRUE(m.owned_span(a, 4 * kPageSize, 9));
    EXPECT_FALSE(m.owned_span(a, 4 * kPageSize, 1));
}

// --- PageTable ------------------------------------------------------------------

TEST(PageTable, SinglePageMapping) {
    PageTable pt;
    pt.map(0x1000, 0x8000'0000, kPageSize, kPermRW);
    const WalkResult w = pt.walk(0x1234);
    EXPECT_EQ(w.fault, FaultKind::kNone);
    EXPECT_EQ(w.out, 0x8000'0234u);
    EXPECT_EQ(w.level, 3);
    EXPECT_EQ(w.table_accesses, 4);
    EXPECT_EQ(w.perms, kPermRW);
}

TEST(PageTable, UnmappedFaults) {
    PageTable pt;
    pt.map(0x1000, 0x8000'0000, kPageSize, kPermRW);
    EXPECT_EQ(pt.walk(0x2000).fault, FaultKind::kTranslation);
    EXPECT_EQ(pt.walk(0x0).fault, FaultKind::kTranslation);
}

TEST(PageTable, Uses2MBBlocksWhenAligned) {
    PageTable pt;
    pt.map(0, 0x4000'0000, 2ull << 20, kPermRWX);
    const WalkResult w = pt.walk(0x123456);
    EXPECT_EQ(w.fault, FaultKind::kNone);
    EXPECT_EQ(w.level, 2);  // 2 MiB block entry
    EXPECT_EQ(w.out, 0x4000'0000ull + 0x123456);
    EXPECT_EQ(pt.mapping_count(), 1u);
}

TEST(PageTable, Uses1GBBlocksWhenAligned) {
    PageTable pt;
    pt.map(0, 0x4000'0000, 1ull << 30, kPermRWX);
    EXPECT_EQ(pt.walk(0x3fff'ffff).level, 1);
    EXPECT_EQ(pt.mapping_count(), 1u);
    EXPECT_EQ(pt.node_count(), 2u);  // root + L1
}

TEST(PageTable, ForcePagesAvoidsBlocks) {
    PageTable pt;
    pt.map(0, 0x4000'0000, 2ull << 20, kPermRWX, false, /*force_pages=*/true);
    EXPECT_EQ(pt.walk(0).level, 3);
    EXPECT_EQ(pt.mapping_count(), 512u);
}

TEST(PageTable, MixedAlignmentUsesPagesThenBlocks) {
    PageTable pt;
    // 2 MiB + one page, starting one page below a 2 MiB boundary.
    pt.map((2ull << 20) - kPageSize, 0x4000'0000 + (2ull << 20) - kPageSize,
           (2ull << 20) + kPageSize, kPermRW);
    EXPECT_EQ(pt.walk((2ull << 20) - kPageSize).level, 3);
    EXPECT_EQ(pt.walk(2ull << 20).level, 2);
    EXPECT_EQ(pt.mapped_bytes(), (2ull << 20) + kPageSize);
}

TEST(PageTable, OverlapThrows) {
    PageTable pt;
    pt.map(0x1000, 0x8000'0000, kPageSize, kPermRW);
    EXPECT_THROW(pt.map(0x1000, 0x9000'0000, kPageSize, kPermRW), std::logic_error);
}

TEST(PageTable, OverlapWithBlockThrows) {
    PageTable pt;
    pt.map(0, 0x4000'0000, 2ull << 20, kPermRW);
    EXPECT_THROW(pt.map(0x10'0000, 0x9000'0000, kPageSize, kPermRW),
                 std::logic_error);
}

TEST(PageTable, UnmapRemovesTranslation) {
    PageTable pt;
    pt.map(0x1000, 0x8000'0000, 4 * kPageSize, kPermRW);
    pt.unmap(0x2000, kPageSize);
    EXPECT_EQ(pt.walk(0x1000).fault, FaultKind::kNone);
    EXPECT_EQ(pt.walk(0x2000).fault, FaultKind::kTranslation);
    EXPECT_EQ(pt.walk(0x3000).fault, FaultKind::kNone);
    EXPECT_EQ(pt.mapping_count(), 3u);
}

TEST(PageTable, UnmapIsIdempotentOnHoles) {
    PageTable pt;
    pt.map(0x1000, 0x8000'0000, kPageSize, kPermRW);
    EXPECT_NO_THROW(pt.unmap(0x10'0000, 16 * kPageSize));
    EXPECT_EQ(pt.mapping_count(), 1u);
}

TEST(PageTable, PartialBlockUnmapSplitsBlock) {
    PageTable pt;
    pt.map(0, 0x4000'0000, 2ull << 20, kPermRW);
    ASSERT_EQ(pt.walk(0).level, 2);  // block entry
    pt.unmap(0x3000, kPageSize);     // carve one page out of the block
    EXPECT_EQ(pt.walk(0x3000).fault, FaultKind::kTranslation);
    // Neighbours survive with identical translations, now via L3 pages.
    const WalkResult before = pt.walk(0x2000);
    EXPECT_EQ(before.fault, FaultKind::kNone);
    EXPECT_EQ(before.out, 0x4000'2000u);
    EXPECT_EQ(before.level, 3);
    EXPECT_EQ(pt.walk(0x4000).out, 0x4000'4000u);
    EXPECT_EQ(pt.mapped_bytes(), (2ull << 20) - kPageSize);
}

TEST(PageTable, PartialBlockProtectSplitsBlock) {
    PageTable pt;
    pt.map(0, 0x4000'0000, 2ull << 20, kPermRWX);
    pt.protect(0x5000, 2 * kPageSize, kPermR);
    EXPECT_EQ(pt.walk(0x5000).perms, kPermR);
    EXPECT_EQ(pt.walk(0x6000).perms, kPermR);
    EXPECT_EQ(pt.walk(0x4000).perms, kPermRWX);
    EXPECT_EQ(pt.walk(0x7000).perms, kPermRWX);
    // Translations unchanged by the split.
    EXPECT_EQ(pt.walk(0x5008).out, 0x4000'5008u);
}

TEST(PageTable, ProtectChangesPerms) {
    PageTable pt;
    pt.map(0x1000, 0x8000'0000, kPageSize, kPermRW);
    pt.protect(0x1000, kPageSize, kPermR);
    EXPECT_EQ(pt.walk(0x1000).perms, kPermR);
}

TEST(PageTable, ProtectUnmappedThrows) {
    PageTable pt;
    EXPECT_THROW(pt.protect(0x1000, kPageSize, kPermR), std::logic_error);
}

TEST(PageTable, AddressSizeFault) {
    PageTable pt;
    EXPECT_EQ(pt.walk(1ull << 48).fault, FaultKind::kAddressSize);
    EXPECT_THROW(pt.map(1ull << 48, 0, kPageSize, kPermRW), std::invalid_argument);
}

TEST(PageTable, SecureBitPropagates) {
    PageTable pt;
    pt.map(0x1000, 0x8000'0000, kPageSize, kPermRW, /*secure=*/true);
    EXPECT_TRUE(pt.walk(0x1000).secure);
}

// Property sweep: random disjoint mappings walk back exactly.
class PageTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageTableProperty, RandomDisjointMappingsRoundTrip) {
    sim::Rng rng(GetParam());
    PageTable pt;
    struct M {
        std::uint64_t in, out, size;
    };
    std::vector<M> maps;
    for (int i = 0; i < 40; ++i) {
        // Slot mappings into disjoint 4 MiB lanes to guarantee no overlap.
        const std::uint64_t lane = (i + 1) * (4ull << 20);
        const std::uint64_t pages = 1 + rng.next_below(16);
        const std::uint64_t off = rng.next_below(64) * kPageSize;
        const std::uint64_t out = 0x8000'0000ull + (rng.next_below(1 << 20)) * kPageSize;
        pt.map(lane + off, out, pages * kPageSize, kPermRW);
        maps.push_back({lane + off, out, pages * kPageSize});
    }
    for (const auto& m : maps) {
        for (std::uint64_t a = m.in; a < m.in + m.size; a += kPageSize / 2) {
            const WalkResult w = pt.walk(a);
            ASSERT_EQ(w.fault, FaultKind::kNone);
            EXPECT_EQ(w.out, m.out + (a - m.in));
        }
        // One page past the end must not resolve into this mapping.
        const WalkResult past = pt.walk(m.in + m.size);
        if (past.fault == FaultKind::kNone) {
            EXPECT_NE(past.out, m.out + m.size);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- TLB ------------------------------------------------------------------------

TEST(Tlb, MissThenHit) {
    Tlb tlb(64, 4);
    EXPECT_EQ(tlb.lookup(1, 0, 0x42), nullptr);
    tlb.insert({true, 1, 0, 0x42, 0x99, kPermRW, false});
    const TlbEntry* e = tlb.lookup(1, 0, 0x42);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->out_page, 0x99u);
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, VmidTagPreventsCrossVmHits) {
    Tlb tlb(64, 4);
    tlb.insert({true, 1, 0, 0x42, 0x99, kPermRW, false});
    EXPECT_EQ(tlb.lookup(2, 0, 0x42), nullptr);
}

TEST(Tlb, AsidTagPreventsCrossAsidHits) {
    Tlb tlb(64, 4);
    tlb.insert({true, 1, 7, 0x42, 0x99, kPermRW, false});
    EXPECT_EQ(tlb.lookup(1, 8, 0x42), nullptr);
    EXPECT_NE(tlb.lookup(1, 7, 0x42), nullptr);
}

TEST(Tlb, FlushAllInvalidatesEverything) {
    Tlb tlb(64, 4);
    for (std::uint64_t p = 0; p < 32; ++p) {
        tlb.insert({true, 1, 0, p, p + 100, kPermRW, false});
    }
    EXPECT_GT(tlb.valid_entries(), 0u);
    tlb.flush_all();
    EXPECT_EQ(tlb.valid_entries(), 0u);
}

TEST(Tlb, FlushVmidIsSelective) {
    Tlb tlb(64, 4);
    tlb.insert({true, 1, 0, 1, 101, kPermRW, false});
    tlb.insert({true, 2, 0, 2, 102, kPermRW, false});
    tlb.flush_vmid(1);
    EXPECT_EQ(tlb.lookup(1, 0, 1), nullptr);
    EXPECT_NE(tlb.lookup(2, 0, 2), nullptr);
}

TEST(Tlb, FlushPage) {
    Tlb tlb(64, 4);
    tlb.insert({true, 1, 0, 5, 105, kPermRW, false});
    tlb.insert({true, 1, 0, 6, 106, kPermRW, false});
    tlb.flush_page(1, 5);
    EXPECT_EQ(tlb.lookup(1, 0, 5), nullptr);
    EXPECT_NE(tlb.lookup(1, 0, 6), nullptr);
}

TEST(Tlb, EvictsRoundRobinWhenSetFull) {
    Tlb tlb(8, 2);  // 4 sets, 2 ways
    // Same set: pages congruent mod 4.
    tlb.insert({true, 1, 0, 0, 100, kPermRW, false});
    tlb.insert({true, 1, 0, 4, 104, kPermRW, false});
    tlb.insert({true, 1, 0, 8, 108, kPermRW, false});  // evicts one
    EXPECT_EQ(tlb.stats().evictions, 1u);
    EXPECT_NE(tlb.lookup(1, 0, 8), nullptr);
}

TEST(Tlb, RejectsBadGeometry) {
    EXPECT_THROW(Tlb(10, 4), std::invalid_argument);
    EXPECT_THROW(Tlb(0, 0), std::invalid_argument);
}

// --- Mmu -------------------------------------------------------------------------

struct MmuFixture : ::testing::Test {
    MemoryMap mem = make_map(64ull << 20);
    PageTable s1, s2;
    Mmu mmu{mem};
};

TEST_F(MmuFixture, IdentityWhenNoTables) {
    mmu.set_context(nullptr, nullptr, 0, 0, World::kNonSecure);
    const Translation t = mmu.translate(kRamBase + 0x1000, Access::kRead);
    EXPECT_EQ(t.fault, FaultKind::kNone);
    EXPECT_EQ(t.pa, kRamBase + 0x1000);
}

TEST_F(MmuFixture, SingleStageTranslation) {
    s1.map(0x10'0000, kRamBase, 16 * kPageSize, kPermRW);
    mmu.set_context(&s1, nullptr, 0, 1, World::kNonSecure);
    const Translation t = mmu.translate(0x10'0008, Access::kRead);
    EXPECT_EQ(t.fault, FaultKind::kNone);
    EXPECT_EQ(t.pa, kRamBase + 8);
    EXPECT_EQ(t.table_accesses, 4);
}

TEST_F(MmuFixture, TwoStageNestedWalkCost) {
    s1.map(0x10'0000, 0x20'0000, 16 * kPageSize, kPermRW);  // VA -> IPA
    s2.map(0x20'0000, kRamBase, 16 * kPageSize, kPermRW);   // IPA -> PA
    mmu.set_context(&s1, &s2, 3, 1, World::kNonSecure);
    const Translation t = mmu.translate(0x10'0000, Access::kRead);
    EXPECT_EQ(t.fault, FaultKind::kNone);
    EXPECT_EQ(t.pa, kRamBase);
    // Nested walk: 4 stage-1 accesses, each + 4 stage-2, plus final stage-2.
    EXPECT_EQ(t.table_accesses, 4 * (1 + 4) + 4);
}

TEST_F(MmuFixture, TlbHitSkipsWalk) {
    s1.map(0x10'0000, kRamBase, kPageSize, kPermRW);
    mmu.set_context(&s1, nullptr, 0, 1, World::kNonSecure);
    (void)mmu.translate(0x10'0000, Access::kRead);
    const Translation t2 = mmu.translate(0x10'0100, Access::kRead);
    EXPECT_TRUE(t2.tlb_hit);
    EXPECT_EQ(t2.table_accesses, 0);
    EXPECT_EQ(t2.pa, kRamBase + 0x100);
}

TEST_F(MmuFixture, PermissionFaultOnWriteToReadOnly) {
    s1.map(0x10'0000, kRamBase, kPageSize, kPermR);
    mmu.set_context(&s1, nullptr, 0, 1, World::kNonSecure);
    EXPECT_EQ(mmu.translate(0x10'0000, Access::kRead).fault, FaultKind::kNone);
    const Translation t = mmu.translate(0x10'0000, Access::kWrite);
    EXPECT_EQ(t.fault, FaultKind::kPermission);
}

TEST_F(MmuFixture, PermissionCheckedEvenOnTlbHit) {
    s1.map(0x10'0000, kRamBase, kPageSize, kPermR);
    mmu.set_context(&s1, nullptr, 0, 1, World::kNonSecure);
    (void)mmu.translate(0x10'0000, Access::kRead);  // fill TLB
    const Translation t = mmu.translate(0x10'0000, Access::kWrite);
    EXPECT_EQ(t.fault, FaultKind::kPermission);
}

TEST_F(MmuFixture, StagePermsCombine) {
    s1.map(0x10'0000, 0x20'0000, kPageSize, kPermRWX);
    s2.map(0x20'0000, kRamBase, kPageSize, kPermR);  // hypervisor restricts
    mmu.set_context(&s1, &s2, 3, 1, World::kNonSecure);
    EXPECT_EQ(mmu.translate(0x10'0000, Access::kRead).fault, FaultKind::kNone);
    EXPECT_EQ(mmu.translate(0x10'0000, Access::kWrite).fault, FaultKind::kPermission);
}

TEST_F(MmuFixture, Stage2FaultReported) {
    s1.map(0x10'0000, 0x20'0000, kPageSize, kPermRW);
    mmu.set_context(&s1, &s2, 3, 1, World::kNonSecure);
    const Translation t = mmu.translate(0x10'0000, Access::kRead);
    EXPECT_EQ(t.fault, FaultKind::kTranslation);
    EXPECT_EQ(t.fault_stage, 2);
}

TEST_F(MmuFixture, NonSecureWorldCannotReachSecureFrames) {
    const PhysAddr spa = mem.alloc_frames(1, 1, World::kSecure);
    s2.map(0x30'0000, spa, kPageSize, kPermRW);
    mmu.set_context(nullptr, &s2, 4, 0, World::kNonSecure);
    const Translation t = mmu.translate(0x30'0000, Access::kRead);
    EXPECT_EQ(t.fault, FaultKind::kSecurity);
}

TEST_F(MmuFixture, SecureWorldReachesSecureFrames) {
    const PhysAddr spa = mem.alloc_frames(1, 1, World::kSecure);
    s2.map(0x30'0000, spa, kPageSize, kPermRW);
    mmu.set_context(nullptr, &s2, 4, 0, World::kSecure);
    EXPECT_EQ(mmu.translate(0x30'0000, Access::kRead).fault, FaultKind::kNone);
}

TEST_F(MmuFixture, FunctionalReadWriteThroughTranslation) {
    s1.map(0x10'0000, kRamBase, kPageSize, kPermRW);
    mmu.set_context(&s1, nullptr, 0, 1, World::kNonSecure);
    EXPECT_TRUE(mmu.write64(0x10'0040, 0x1122334455667788ull));
    std::uint64_t v = 0;
    EXPECT_TRUE(mmu.read64(0x10'0040, v));
    EXPECT_EQ(v, 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(kRamBase + 0x40, World::kNonSecure), v);
}

TEST_F(MmuFixture, FunctionalAccessFailsOnFault) {
    mmu.set_context(&s1, nullptr, 0, 1, World::kNonSecure);
    std::uint64_t v = 77;
    EXPECT_FALSE(mmu.read64(0xdead'0000, v));
    EXPECT_EQ(v, 77u);
    EXPECT_FALSE(mmu.write64(0xdead'0000, 1));
}

}  // namespace
}  // namespace hpcsec::arch
