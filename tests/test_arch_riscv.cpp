// RISC-V H-extension backend tests: Sv39/Sv39x4 table formats and the
// two-stage nested walk, HS/VS privilege mapping and the trap round-trip
// through the SPM, the vstimer cadence on the PLIC's virtual-timer line,
// PLIC claim/complete semantics, --isa parsing, and cross-worker
// determinism of a full RISC-V node.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "arch/irq_controller.h"
#include "arch/isa.h"
#include "arch/mmu.h"
#include "arch/platform.h"
#include "arch/timer.h"
#include "core/harness.h"
#include "hafnium/spm.h"

namespace hpcsec {
namespace {

using arch::Isa;
using arch::IsaOps;
using arch::PtFormat;

const IsaOps& riscv() { return IsaOps::get(Isa::kRiscv); }

// --- table formats -----------------------------------------------------------

TEST(Sv39Format, GeometryMatchesTheSpec) {
    const PtFormat s1 = PtFormat::sv39();
    EXPECT_EQ(s1.levels, 3);
    EXPECT_EQ(s1.entries(0), 512u);
    EXPECT_EQ(s1.entries(2), 512u);
    EXPECT_EQ(s1.input_limit(), 1ull << 39);
    // Sv39x4: four concatenated root tables -> 2048 entries, 41-bit GPA.
    const PtFormat s2 = PtFormat::sv39x4();
    EXPECT_EQ(s2.levels, 3);
    EXPECT_EQ(s2.entries(0), 2048u);
    EXPECT_EQ(s2.entries(1), 512u);
    EXPECT_EQ(s2.input_limit(), 1ull << 41);
    // Shared span ladder: gigapage / megapage / page.
    for (const PtFormat* f : {&s1, &s2}) {
        EXPECT_EQ(f->span(0), 1ull << 30);
        EXPECT_EQ(f->span(1), 2ull << 20);
        EXPECT_EQ(f->span(2), arch::kPageSize);
    }
    EXPECT_EQ(riscv().stage1.input_limit(), s1.input_limit());
    EXPECT_EQ(riscv().stage2.input_limit(), s2.input_limit());
}

TEST(Sv39Format, GigapageBlockMapsAtTheRootLevel) {
    // Sv39's root-level span is 1 GiB — a legal gigapage, unlike ARM's
    // 512 GiB root span. An aligned 1 GiB mapping must use one root entry.
    arch::PageTable pt(PtFormat::sv39());
    pt.map(1ull << 30, 2ull << 30, 1ull << 30, arch::kPermRW);
    const arch::WalkResult w = pt.walk((1ull << 30) + 0x123000);
    EXPECT_EQ(w.fault, arch::FaultKind::kNone);
    EXPECT_EQ(w.out, (2ull << 30) + 0x123000);
    EXPECT_EQ(w.level, 0);           // terminal at the root
    EXPECT_EQ(w.table_accesses, 1);  // single entry read
    EXPECT_EQ(pt.node_count(), 1u);  // no deeper tables were built
}

TEST(Sv39Format, WalkBeyondInputRangeFaults) {
    arch::PageTable pt(PtFormat::sv39x4());
    pt.map(0, 0x8000'0000, arch::kPageSize, arch::kPermRW);
    EXPECT_EQ(pt.walk(1ull << 41).fault, arch::FaultKind::kAddressSize);
    EXPECT_THROW(pt.map(1ull << 41, 0, arch::kPageSize, arch::kPermRW),
                 std::logic_error);
}

TEST(Sv39x4TwoStage, NestedWalkDepthIsThreeNotFour) {
    // Page-granular stage-1 over Sv39 (3 accesses) nested through Sv39x4
    // stage-2 (3 more per stage-1 access, plus the final-IPA walk):
    //   3 * (1 + 3) + 3 = 15 table reads — versus 24 on ARMv8's 4-level
    //   format. The perf model consumes exactly this count.
    arch::MemoryMap mem;
    mem.add_region({"ram", 0x8000'0000, 64ull << 20, arch::RegionKind::kRam,
                    arch::World::kNonSecure});
    arch::PageTable s1(PtFormat::sv39());
    arch::PageTable s2(PtFormat::sv39x4());
    s1.map(0, 0x4000'0000, 1ull << 20, arch::kPermRW, /*secure=*/false,
           /*force_pages=*/true);
    s2.map(0x4000'0000, 0x8000'0000, 1ull << 20, arch::kPermRW,
           /*secure=*/false, /*force_pages=*/true);
    arch::Mmu mmu(mem);
    mmu.set_context(&s1, &s2, /*vmid=*/1, /*asid=*/1, arch::World::kNonSecure);
    const arch::Translation t = mmu.translate(0x2040, arch::Access::kWrite);
    ASSERT_EQ(t.fault, arch::FaultKind::kNone);
    EXPECT_EQ(t.pa, 0x8000'2040u);
    EXPECT_EQ(t.table_accesses, 15);
    EXPECT_FALSE(t.tlb_hit);
    // The combined TLB entry caches the two-stage result.
    EXPECT_TRUE(mmu.translate(0x2048, arch::Access::kWrite).tlb_hit);
}

// --- privilege mapping and the HS/VS trap round-trip -------------------------

TEST(RiscvPrivilege, LadderMapsOntoTheGenericEls) {
    const IsaOps& ops = riscv();
    EXPECT_EQ(ops.isa, Isa::kRiscv);
    EXPECT_STREQ(ops.name, "riscv");
    EXPECT_EQ(ops.user_level, arch::El::kEl0);
    EXPECT_EQ(ops.guest_kernel_level, arch::El::kEl1);
    EXPECT_EQ(ops.hyp_level, arch::El::kEl2);
    EXPECT_EQ(ops.monitor_level, arch::El::kEl3);
    EXPECT_STREQ(ops.priv_name(arch::El::kEl0), "U");
    EXPECT_STREQ(ops.priv_name(arch::El::kEl1), "VS");
    EXPECT_STREQ(ops.priv_name(arch::El::kEl2), "HS");
    EXPECT_STREQ(ops.priv_name(arch::El::kEl3), "M");
}

struct RiscvSpmFixture : ::testing::Test {
    arch::PlatformConfig pcfg = [] {
        auto c = arch::PlatformConfig::pine_a64();
        c.isa = Isa::kRiscv;
        return c;
    }();
    arch::Platform platform{pcfg};
    std::unique_ptr<hafnium::Spm> spm;

    void SetUp() override {
        hafnium::Manifest m;
        hafnium::VmSpec p;
        p.name = "primary";
        p.role = hafnium::VmRole::kPrimary;
        p.mem_bytes = 64ull << 20;
        p.vcpu_count = 4;
        p.image = {1, 2, 3};
        hafnium::VmSpec s;
        s.name = "compute";
        s.role = hafnium::VmRole::kSecondary;
        s.mem_bytes = 32ull << 20;
        s.vcpu_count = 4;
        s.image = {4, 5, 6};
        m.vms = {p, s};
        spm = std::make_unique<hafnium::Spm>(platform, m);
        spm->boot();
    }
};

TEST_F(RiscvSpmFixture, BootLandsHartsInVsMode) {
    EXPECT_EQ(platform.isa_ops().isa, Isa::kRiscv);
    // SBI HSM hart_start enters HS (the hypervisor), which then drops the
    // hart into the guest at VS — same ladder walk as ARM EL2 -> EL1.
    EXPECT_EQ(platform.core(0).el(), platform.isa_ops().guest_kernel_level);
    EXPECT_STREQ(platform.isa_ops().priv_name(platform.core(0).el()), "VS");
    // The device tree advertises the RISC-V cpu binding.
    const auto* cpu = platform.device_tree().find("cpus/cpu@0");
    ASSERT_NE(cpu, nullptr);
    EXPECT_EQ(cpu->get_string("compatible"), riscv().cpu_compatible);
}

TEST_F(RiscvSpmFixture, HypercallRoundTripsThroughHs) {
    // A guest hypercall is a VS -> HS trap, handled in the SPM, with a
    // VS-mode return: state must be consistent on both sides of the trip.
    hafnium::Vm& compute = *spm->find_vm("compute");
    const auto virt_timer =
        static_cast<std::uint64_t>(platform.isa_ops().irq.virt_timer);
    const auto res = spm->hypercall(0, compute.id(),
                                    hafnium::Call::kInterruptEnable,
                                    {virt_timer, 1, 0, 0});
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(compute.vcpu(1).vgic.enabled.contains(
        static_cast<int>(virt_timer)));
    EXPECT_EQ(platform.core(0).el(), platform.isa_ops().guest_kernel_level);
    // Guest memory stays reachable through the Sv39x4 stage-2.
    EXPECT_TRUE(spm->vm_write64(compute.id(), 0x1000, 0x5a));
    std::uint64_t v = 0;
    EXPECT_TRUE(spm->vm_read64(compute.id(), 0x1000, v));
    EXPECT_EQ(v, 0x5au);
    EXPECT_EQ(compute.stage2().format().input_limit(), 1ull << 41);
}

// --- vstimer cadence ---------------------------------------------------------

TEST(Vstimer, FiresOnThePlicVirtualTimerLine) {
    sim::Engine engine;
    const auto irqc = riscv().make_irq_controller(1);
    arch::GenericTimer timer(engine, *irqc, 0, riscv().irq);
    irqc->enable_irq(riscv().irq.virt_timer);
    std::vector<int> delivered;
    irqc->set_signal([&](arch::CoreId) {
        delivered.push_back(irqc->ack(0));
        irqc->eoi(0, delivered.back());
    });
    // Reprogram-on-fire, the guest tick pattern: a steady 1000-cycle cadence.
    for (int tick = 1; tick <= 3; ++tick) {
        timer.set_deadline(arch::TimerChannel::kVirt, tick * 1000);
        engine.run_until(tick * 1000);
    }
    ASSERT_EQ(delivered.size(), 3u);
    for (const int irq : delivered) EXPECT_EQ(irq, riscv().irq.virt_timer);
    EXPECT_EQ(timer.fired_count(arch::TimerChannel::kVirt), 3u);
    EXPECT_EQ(timer.fired_count(arch::TimerChannel::kPhys), 0u);
}

// --- PLIC claim semantics ----------------------------------------------------

struct PlicFixture : ::testing::Test {
    std::unique_ptr<arch::IrqController> irqc = riscv().make_irq_controller(2);
    arch::IrqController& plic = *irqc;
};

TEST_F(PlicFixture, ClaimReturnsHighestPriorityThenLowestId) {
    // PLIC arbitration: numerically larger priority wins (the opposite
    // convention to the GIC), ids break ties lowest-first.
    plic.enable_irq(40);
    plic.enable_irq(41);
    plic.enable_irq(42);
    plic.set_external_target(40, 0);
    plic.set_external_target(41, 0);
    plic.set_external_target(42, 0);
    plic.set_priority(41, 7);  // highest
    plic.set_priority(42, 7);  // tie with 41 -> 41 claims first
    plic.raise_external(42);
    plic.raise_external(41);
    plic.raise_external(40);
    EXPECT_EQ(plic.ack(0), 41);
    EXPECT_EQ(plic.ack(0), 42);
    EXPECT_EQ(plic.ack(0), 40);
    EXPECT_EQ(plic.ack(0), arch::IrqController::kSpurious);
}

TEST_F(PlicFixture, UniformPrioritiesClaimLowestIdFirst) {
    // The determinism contract: at default (uniform) priorities both
    // backends deliver pending interrupts in ascending id order, so IRQ
    // interleaving — and therefore every downstream event trace — is
    // ISA-invariant.
    for (const int irq : {50, 34, 47}) {
        plic.enable_irq(irq);
        plic.set_external_target(irq, 1);
        plic.raise_external(irq);
    }
    EXPECT_EQ(plic.ack(1), 34);
    EXPECT_EQ(plic.ack(1), 47);
    EXPECT_EQ(plic.ack(1), 50);
}

TEST_F(PlicFixture, CompleteResignalsWhileSourcesRemainPending) {
    int signals = 0;
    plic.set_signal([&](arch::CoreId) { ++signals; });
    plic.enable_irq(40);
    plic.enable_irq(41);
    plic.set_external_target(40, 0);
    plic.set_external_target(41, 0);
    plic.raise_external(40);
    plic.raise_external(41);
    const int first = plic.ack(0);
    EXPECT_EQ(plic.active_irq(0), first);
    signals = 0;
    plic.eoi(0, first);  // complete: the second source re-signals
    EXPECT_EQ(signals, 1);
    EXPECT_EQ(plic.ack(0), 41);
}

TEST_F(PlicFixture, RangeChecksMirrorTheGicContract) {
    EXPECT_THROW(plic.raise_external(3), std::invalid_argument);
    EXPECT_THROW(plic.raise_private(0, 40), std::invalid_argument);
    EXPECT_THROW(plic.send_ipi(0, 20), std::invalid_argument);
    EXPECT_THROW(plic.set_external_target(40, 9), std::invalid_argument);
}

// --- --isa parsing -----------------------------------------------------------

TEST(ParseIsa, RoundTripsAndRejectsWithValidNames) {
    Isa isa = Isa::kArm;
    std::string error;
    EXPECT_TRUE(arch::parse_isa("riscv", isa, error));
    EXPECT_EQ(isa, Isa::kRiscv);
    EXPECT_TRUE(arch::parse_isa("arm", isa, error));
    EXPECT_EQ(isa, Isa::kArm);
    EXPECT_EQ(arch::to_string(Isa::kArm), "arm");
    EXPECT_EQ(arch::to_string(Isa::kRiscv), "riscv");
    EXPECT_FALSE(arch::parse_isa("x86", isa, error));
    EXPECT_NE(error.find("x86"), std::string::npos);
    EXPECT_NE(error.find("valid: arm, riscv"), std::string::npos);
}

// --- cross-worker determinism of a full RISC-V node --------------------------

TEST(RiscvDeterminism, SameSeedBitIdenticalAcrossJobCounts) {
    // The selfish-detour experiment on a RISC-V node must produce identical
    // results whether trials are fanned out over 1 worker or 8 — same
    // contract the ARM benches already guarantee.
    const std::uint64_t seed = 20211114;
    std::vector<core::SelfishJob> runs;
    for (const auto kind :
         {core::SchedulerKind::kNativeKitten, core::SchedulerKind::kKittenPrimary,
          core::SchedulerKind::kLinuxPrimary}) {
        core::NodeConfig base = core::Harness::default_config(kind, seed);
        base.platform.isa = Isa::kRiscv;
        runs.push_back({kind, 2.0, seed, base});
    }
    const auto serial = core::run_selfish_experiments(runs, 1);
    const auto pooled = core::run_selfish_experiments(runs, 8);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].detours_all_cores, pooled[i].detours_all_cores) << i;
        EXPECT_EQ(serial[i].total_detour_us_all, pooled[i].total_detour_us_all)
            << i;
        EXPECT_EQ(serial[i].max_detour_us, pooled[i].max_detour_us) << i;
        ASSERT_EQ(serial[i].detours.size(), pooled[i].detours.size()) << i;
    }
}

}  // namespace
}  // namespace hpcsec
