// Cache-hierarchy model tests: LRU mechanics, write-back accounting,
// flush semantics, hierarchy interaction, MMU integration.
#include <gtest/gtest.h>

#include "arch/cache.h"
#include "arch/memory_map.h"
#include "arch/mmu.h"
#include "arch/page_table.h"
#include "sim/rng.h"

namespace hpcsec::arch {
namespace {

CacheGeometry tiny() { return {1024, 64, 2}; }  // 8 sets x 2 ways

TEST(CacheLevel, MissThenHitOnSameLine) {
    CacheLevel c(tiny());
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1008, false));  // same 64B line
    EXPECT_FALSE(c.access(0x1040, false)); // next line
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheLevel, GeometryDerivesSets) {
    CacheGeometry g{32 * 1024, 64, 4};
    EXPECT_EQ(g.sets(), 128u);
    EXPECT_THROW(CacheLevel({1000, 64, 3}), std::invalid_argument);
}

TEST(CacheLevel, LruEvictsLeastRecentlyUsed) {
    CacheLevel c(tiny());
    // Three lines mapping to set 0 (stride = sets*line = 512).
    c.access(0 * 512 * 8 + 0, false);   // A -> set 0
    c.access(1 * 512 * 8 + 0, false);   // B -> set 0 (tag differs)
    EXPECT_TRUE(c.contains(0));
    c.access(0, false);                 // touch A: B becomes LRU
    c.access(2 * 512 * 8 + 0, false);   // C evicts B
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(1 * 512 * 8));
    EXPECT_TRUE(c.contains(2 * 512 * 8));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(CacheLevel, DirtyEvictionCountsWriteback) {
    CacheLevel c(tiny());
    c.access(0, true);                 // dirty A in set 0
    c.access(1 * 512 * 8, false);      // B
    c.access(2 * 512 * 8, false);      // evicts dirty A
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(CacheLevel, FlushAllInvalidatesAndWritesBackDirty) {
    CacheLevel c(tiny());
    c.access(0x0, true);
    c.access(0x40, false);
    EXPECT_EQ(c.valid_lines(), 2u);
    c.flush_all();
    EXPECT_EQ(c.valid_lines(), 0u);
    EXPECT_EQ(c.stats().writebacks, 1u);
    EXPECT_EQ(c.stats().flushes, 1u);
}

TEST(CacheLevel, FlushRangeIsSelective) {
    CacheLevel c(tiny());
    c.access(0x0, false);
    c.access(0x40, false);
    c.access(0x80, false);
    c.flush_range(0x40, 0x40);
    EXPECT_TRUE(c.contains(0x0));
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_TRUE(c.contains(0x80));
}

TEST(CacheLevel, WorkingSetBiggerThanCacheThrashes) {
    CacheLevel c(tiny());  // 1 KiB
    // Stream 8 KiB twice: second pass still misses everything.
    for (int pass = 0; pass < 2; ++pass) {
        for (PhysAddr a = 0; a < 8192; a += 64) c.access(a, false);
    }
    EXPECT_EQ(c.stats().hits, 0u);
    EXPECT_EQ(c.stats().misses, 256u);
}

TEST(CacheLevel, WorkingSetWithinCacheHitsOnSecondPass) {
    CacheLevel c({8192, 64, 4});
    for (int pass = 0; pass < 2; ++pass) {
        for (PhysAddr a = 0; a < 4096; a += 64) c.access(a, false);
    }
    EXPECT_EQ(c.stats().hits, 64u);
    EXPECT_EQ(c.stats().misses, 64u);
}

TEST(CacheHierarchy, L2CatchesL1Evictions) {
    CacheHierarchy h({1024, 64, 2}, {16 * 1024, 64, 4});
    // Touch 4 KiB (spills tiny L1, fits L2); second pass: L1 misses, L2 hits.
    for (PhysAddr a = 0; a < 4096; a += 64) h.access(a, false);
    const auto l2_misses_after_first = h.l2().stats().misses;
    for (PhysAddr a = 0; a < 4096; a += 64) {
        const auto r = h.access(a, false);
        EXPECT_TRUE(r.l2_hit);
    }
    EXPECT_EQ(h.l2().stats().misses, l2_misses_after_first);
}

TEST(CacheHierarchy, DefaultGeometryIsA53Like) {
    CacheHierarchy h;
    EXPECT_EQ(h.l1().geometry().size_bytes, 32u * 1024);
    EXPECT_EQ(h.l2().geometry().size_bytes, 512u * 1024);
    h.flush_all();
    EXPECT_EQ(h.l1().stats().flushes, 1u);
    EXPECT_EQ(h.l2().stats().flushes, 1u);
}

TEST(CacheHierarchy, RandomizedStatsConsistency) {
    CacheHierarchy h({2048, 64, 2}, {8192, 64, 4});
    sim::Rng rng(7);
    constexpr int kAccesses = 5000;
    for (int i = 0; i < kAccesses; ++i) {
        h.access(rng.next_below(64 * 1024) & ~7ull, rng.next_double() < 0.3);
    }
    const auto& l1 = h.l1().stats();
    EXPECT_EQ(l1.hits + l1.misses, static_cast<std::uint64_t>(kAccesses));
    // L2 sees exactly the L1 misses.
    const auto& l2 = h.l2().stats();
    EXPECT_EQ(l2.hits + l2.misses, l1.misses);
    EXPECT_LE(h.l1().valid_lines(), 2048u / 64);
}

TEST(MmuCacheIntegration, FunctionalAccessesProbeDcache) {
    MemoryMap mem;
    mem.add_region({"ram", 0x4000'0000, 1ull << 20, RegionKind::kRam,
                    World::kNonSecure});
    PageTable s1;
    s1.map(0, 0x4000'0000, 1ull << 20, kPermRW);
    Mmu mmu(mem);
    mmu.set_context(&s1, nullptr, 0, 1, World::kNonSecure);
    CacheHierarchy dcache;
    mmu.set_dcache(&dcache);

    ASSERT_TRUE(mmu.write64(0x100, 42));
    std::uint64_t v = 0;
    ASSERT_TRUE(mmu.read64(0x100, v));
    EXPECT_EQ(v, 42u);
    EXPECT_EQ(dcache.l1().stats().misses, 1u);  // fill on write
    EXPECT_EQ(dcache.l1().stats().hits, 1u);    // read hits the line
}

}  // namespace
}  // namespace hpcsec::arch
