// The isolation-invariant auditor (src/check): every rule fires on the
// corruption engineered to violate it, clean runs of all three node
// configurations stay silent, and strict vs sampled modes behave as
// documented in docs/CHECKING.md.
#include <gtest/gtest.h>

#include <memory>

#include "check/check.h"
#include "check/corrupt.h"
#include "core/harness.h"
#include "core/node.h"
#include "obs/events.h"
#include "workloads/nas.h"
#include "workloads/workload.h"

namespace hpcsec {
namespace {

using check::Auditor;
using check::CheckViolation;
using check::CorruptionKind;
using check::Mode;
using check::Rule;
using core::Harness;
using core::Node;
using core::NodeConfig;
using core::SchedulerKind;

[[nodiscard]] wl::WorkloadSpec small_spec() {
    wl::WorkloadSpec spec = wl::nas_cg_spec();
    spec.units_per_thread_step /= 10;
    return spec;
}

/// Put `n` spinner threads on the compute VM so VCPUs actually run (and
/// transition) while the caller advances time with run_for.
void start_spinner(Node& node, wl::ParallelWorkload& work, int n) {
    work.set_mode(arch::TranslationMode::kTwoStage);
    for (int i = 0; i < n; ++i) {
        node.compute_guest()->set_thread(i, &work.thread(i));
    }
    node.compute_guest()->wake_runnable_vcpus();
    for (int i = 0; i < n; ++i) {
        node.spm()->make_vcpu_ready(node.compute_vm()->vcpu(i));
        node.primary_os()->on_vcpu_wake(node.compute_vm()->vcpu(i));
    }
}

// --- state-machine table -----------------------------------------------------

TEST(VcpuTransitions, LegalityTable) {
    using hafnium::VcpuState;
    using hafnium::vcpu_transition_legal;
    // The documented machine: kOff -> kReady -> kRunning <-> kBlocked,
    // kBlocked -> kReady, kAborted terminal, self-transitions no-ops.
    EXPECT_TRUE(vcpu_transition_legal(VcpuState::kOff, VcpuState::kReady));
    EXPECT_TRUE(vcpu_transition_legal(VcpuState::kReady, VcpuState::kRunning));
    EXPECT_TRUE(vcpu_transition_legal(VcpuState::kReady, VcpuState::kBlocked));
    EXPECT_TRUE(vcpu_transition_legal(VcpuState::kRunning, VcpuState::kReady));
    EXPECT_TRUE(vcpu_transition_legal(VcpuState::kRunning, VcpuState::kBlocked));
    EXPECT_TRUE(vcpu_transition_legal(VcpuState::kBlocked, VcpuState::kReady));
    EXPECT_TRUE(vcpu_transition_legal(VcpuState::kRunning, VcpuState::kAborted));
    EXPECT_TRUE(vcpu_transition_legal(VcpuState::kOff, VcpuState::kOff));

    EXPECT_FALSE(vcpu_transition_legal(VcpuState::kOff, VcpuState::kRunning));
    EXPECT_FALSE(vcpu_transition_legal(VcpuState::kOff, VcpuState::kBlocked));
    EXPECT_FALSE(vcpu_transition_legal(VcpuState::kBlocked, VcpuState::kRunning));
    EXPECT_FALSE(vcpu_transition_legal(VcpuState::kReady, VcpuState::kOff));
    EXPECT_FALSE(vcpu_transition_legal(VcpuState::kAborted, VcpuState::kReady));
    EXPECT_FALSE(vcpu_transition_legal(VcpuState::kAborted, VcpuState::kRunning));
}

// --- clean runs stay silent --------------------------------------------------

TEST(CheckClean, StrictKittenRunHasZeroFindings) {
    Harness::Options opt;
    opt.trials = 1;
    opt.measurement_noise = false;
    opt.check_mode = Mode::kStrict;
    Harness h(opt);
    // Strict mode throws on the first violation, so completing is the proof.
    const auto r = h.run_trial(SchedulerKind::kKittenPrimary, small_spec(), 42);
    EXPECT_EQ(r.check_failures, 0u);
    EXPECT_EQ(r.check_report, "");
}

TEST(CheckClean, StrictLinuxRunHasZeroFindings) {
    Harness::Options opt;
    opt.trials = 1;
    opt.measurement_noise = false;
    opt.check_mode = Mode::kStrict;
    Harness h(opt);
    const auto r = h.run_trial(SchedulerKind::kLinuxPrimary, small_spec(), 43);
    EXPECT_EQ(r.check_failures, 0u);
}

TEST(CheckClean, NativeConfigHasNoSpmToAudit) {
    Harness::Options opt;
    opt.trials = 1;
    opt.measurement_noise = false;
    opt.check_mode = Mode::kStrict;
    Harness h(opt);
    const auto r = h.run_trial(SchedulerKind::kNativeKitten, small_spec(), 44);
    EXPECT_EQ(r.check_failures, 0u);

    NodeConfig cfg = Harness::default_config(SchedulerKind::kNativeKitten, 44);
    cfg.check_mode = Mode::kStrict;
    Node node(std::move(cfg));
    node.boot();
    EXPECT_EQ(node.auditor(), nullptr);
}

TEST(CheckClean, SecureWorldAndLoginVmStayClean) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 7);
    cfg.secure_compute_vm = true;
    cfg.with_super_secondary = true;
    cfg.check_mode = Mode::kStrict;
    Node node(std::move(cfg));
    node.boot();
    node.run_for(0.2);
    ASSERT_NE(node.auditor(), nullptr);
    EXPECT_EQ(node.auditor()->validate(), 0u);
    EXPECT_TRUE(node.auditor()->failures().empty());
}

// --- every corruption is flagged by its rule ---------------------------------

struct CorruptionCase {
    CorruptionKind kind;
    Rule rule;
};

class CheckCorruption : public ::testing::TestWithParam<CorruptionCase> {
protected:
    void boot(Mode mode) {
        NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 11);
        cfg.check_mode = mode;
        node_ = std::make_unique<Node>(std::move(cfg));
        node_->boot();
        node_->run_for(0.05);  // let the system reach steady state
        ASSERT_NE(node_->auditor(), nullptr);
    }

    std::unique_ptr<Node> node_;
};

TEST_P(CheckCorruption, SampledAuditFlagsIt) {
    boot(Mode::kSampled);
    Auditor& auditor = *node_->auditor();
    ASSERT_EQ(auditor.validate(), 0u) << auditor.report();

    const Rule expected = inject_corruption(*node_->spm(), GetParam().kind);
    EXPECT_EQ(expected, GetParam().rule);
    auditor.validate();
    EXPECT_GE(auditor.count(expected), 1u)
        << "expected a " << to_string(expected)
        << " finding, got:\n" << auditor.report();

    // Findings surface as structured obs events too (category kCheck).
    auto& recorder = node_->platform().recorder();
    if (recorder.enabled(obs::Category::kCheck)) {
        EXPECT_GE(recorder.count(obs::EventType::kCheckFail), 1u);
    }
}

TEST_P(CheckCorruption, FindingsAreDeduplicated) {
    boot(Mode::kSampled);
    Auditor& auditor = *node_->auditor();
    inject_corruption(*node_->spm(), GetParam().kind);
    auditor.validate();
    const std::size_t after_first = auditor.failures().size();
    ASSERT_GE(after_first, 1u);
    EXPECT_EQ(auditor.validate(), 0u);  // same damage, no new findings
    EXPECT_EQ(auditor.failures().size(), after_first);
}

TEST_P(CheckCorruption, StrictModeThrows) {
    boot(Mode::kStrict);
    Auditor& auditor = *node_->auditor();
    if (GetParam().kind == CorruptionKind::kForgedTransition) {
        // Reported by the transition hook at the forged set_state call.
        EXPECT_THROW(inject_corruption(*node_->spm(), GetParam().kind),
                     CheckViolation);
    } else {
        inject_corruption(*node_->spm(), GetParam().kind);
        EXPECT_THROW(auditor.validate(), CheckViolation);
    }
    EXPECT_GE(auditor.count(GetParam().rule), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, CheckCorruption,
    ::testing::Values(
        CorruptionCase{CorruptionKind::kRogueStage2Map, Rule::kStage2Ownership},
        CorruptionCase{CorruptionKind::kForgedTransition, Rule::kVcpuTransition},
        CorruptionCase{CorruptionKind::kStrayVgicPending, Rule::kVgicSanity},
        CorruptionCase{CorruptionKind::kSkewedStats, Rule::kAccounting},
        CorruptionCase{CorruptionKind::kWorldMismatch, Rule::kTrustZone}),
    [](const ::testing::TestParamInfo<CorruptionCase>& info) {
        std::string name = to_string(info.param.kind);
        for (char& c : name) {
            if (c == '-') c = '_';
        }
        return name;
    });

// A rogue writable alias of another VM's RAM also violates exclusivity
// (the frame is writable in two stage-2 tables with no covering grant).
TEST(CheckCorruptionExtra, RogueMapAlsoBreaksExclusivity) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 12);
    cfg.check_mode = Mode::kSampled;
    Node node(std::move(cfg));
    node.boot();
    inject_corruption(*node.spm(), CorruptionKind::kRogueStage2Map);
    node.auditor()->validate();
    EXPECT_GE(node.auditor()->count(Rule::kStage2Exclusive), 1u)
        << node.auditor()->report();
}

// --- mode semantics ----------------------------------------------------------

TEST(CheckModes, SampledScansAtThePeriodCadence) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 13);
    cfg.check_mode = Mode::kSampled;
    cfg.check_period = 8;
    Node node(std::move(cfg));
    node.boot();
    wl::ParallelWorkload work(wl::spinner_spec(2));
    start_spinner(node, work, 2);
    node.run_for(0.2);
    const Auditor& auditor = *node.auditor();
    EXPECT_GE(auditor.audits(), 1u);
    EXPECT_GE(auditor.transitions_checked(), 1u);
    // Sampled scans are bounded by the hypercall volume over the period.
    EXPECT_LE(auditor.audits(),
              node.spm()->stats().hypercalls /
                      static_cast<std::uint64_t>(cfg.check_period) +
                  2u);
    EXPECT_TRUE(auditor.failures().empty()) << auditor.report();
}

TEST(CheckModes, SampledAccumulatesInsteadOfThrowing) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 14);
    cfg.check_mode = Mode::kSampled;
    Node node(std::move(cfg));
    node.boot();
    inject_corruption(*node.spm(), CorruptionKind::kStrayVgicPending);
    inject_corruption(*node.spm(), CorruptionKind::kSkewedStats);
    EXPECT_NO_THROW(node.auditor()->validate());
    EXPECT_GE(node.auditor()->failures().size(), 2u);
    // The run can continue after findings in sampled mode.
    EXPECT_NO_THROW(node.run_for(0.05));
}

TEST(CheckModes, MetricsGaugesPublished) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 15);
    cfg.check_mode = Mode::kSampled;
    Node node(std::move(cfg));
    node.boot();
    wl::ParallelWorkload work(wl::spinner_spec(2));
    start_spinner(node, work, 2);
    node.run_for(0.1);
    inject_corruption(*node.spm(), CorruptionKind::kStrayVgicPending);
    node.auditor()->validate();
    const auto snap = node.publish_metrics();
    EXPECT_GE(snap.value_of("check.audits"), 1.0);
    EXPECT_GE(snap.value_of("check.failures"), 1.0);
    EXPECT_GE(snap.value_of("check.transitions"), 1.0);
}

TEST(CheckModes, DetachRestoresUnauditedSpm) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 16);
    Node node(std::move(cfg));
    node.boot();
    ASSERT_EQ(node.spm()->audit(), nullptr);
    {
        Auditor scoped(*node.spm(), {Mode::kStrict});
        EXPECT_EQ(node.spm()->audit(), &scoped);
        EXPECT_EQ(scoped.validate(), 0u) << scoped.report();
    }
    EXPECT_EQ(node.spm()->audit(), nullptr);
    EXPECT_NO_THROW(node.run_for(0.05));
}

TEST(CheckModes, ToStringCoversEveryEnumerator) {
    EXPECT_STREQ(to_string(Mode::kOff), "off");
    EXPECT_STREQ(to_string(Mode::kSampled), "sampled");
    EXPECT_STREQ(to_string(Mode::kStrict), "strict");
    EXPECT_STREQ(to_string(Rule::kStage2Exclusive), "stage2-exclusive");
    EXPECT_STREQ(to_string(Rule::kAccounting), "accounting");
    EXPECT_STREQ(to_string(CorruptionKind::kRogueStage2Map), "rogue-stage2-map");
}

// Memory sharing through the legitimate FFA path must NOT trip the
// exclusivity rule: the grant covers the overlap.
TEST(CheckGrants, SharedPagesAreNotExclusivityFindings) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 17);
    cfg.check_mode = Mode::kStrict;
    cfg.with_super_secondary = true;  // job-control channel uses FFA sharing
    Node node(std::move(cfg));
    node.boot();
    node.run_for(0.2);  // strict: any violation would have thrown
    ASSERT_NE(node.auditor(), nullptr);
    EXPECT_EQ(node.auditor()->validate(), 0u) << node.auditor()->report();
}

}  // namespace
}  // namespace hpcsec
