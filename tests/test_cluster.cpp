// Scale-model tests: trace extraction, allreduce math, projection
// properties (determinism, monotonic noise amplification, config ordering).
#include <gtest/gtest.h>

#include "cluster/scale_model.h"
#include "cluster/trace_collect.h"
#include "core/harness.h"
#include "workloads/nas.h"

namespace hpcsec::cluster {
namespace {

TEST(TraceExtraction, DiffsTimestamps) {
    const NodeTrace t = trace_from_step_times({100, 250, 600}, 40);
    EXPECT_EQ(t.step_cycles, (std::vector<sim::Cycles>{60, 150, 350}));
    EXPECT_EQ(t.total(), 560u);
}

TEST(Interconnect, AllreduceScalesLogarithmically) {
    InterconnectModel net;
    EXPECT_DOUBLE_EQ(net.allreduce_us(1), 0.0);
    const double two = net.allreduce_us(2);
    const double four = net.allreduce_us(4);
    const double eight = net.allreduce_us(8);
    EXPECT_GT(two, 0.0);
    EXPECT_NEAR(four, 2.0 * two, 1e-9);
    EXPECT_NEAR(eight, 3.0 * two, 1e-9);
    // Non-power-of-two rounds up.
    EXPECT_NEAR(net.allreduce_us(5), net.allreduce_us(8), 1e-9);
}

NodeTrace constant_trace(std::size_t steps, sim::Cycles c) {
    NodeTrace t;
    t.step_cycles.assign(steps, c);
    return t;
}

TEST(ScaleModel, ConstantTracesGiveFlatEfficiency) {
    // No noise: every node identical -> max() adds nothing; efficiency only
    // dips via the allreduce term.
    InterconnectModel net;
    net.latency_us = 0.0;
    net.bytes_per_allreduce = 0.0;
    ScaleModel m({constant_trace(50, 100000)}, sim::ClockSpec{1'000'000'000}, net);
    for (const int n : {1, 4, 64, 1024}) {
        const ScaleResult r = m.project(n, 1);
        EXPECT_NEAR(r.efficiency, 1.0, 1e-12) << n;
    }
}

TEST(ScaleModel, NoisyTracesLoseEfficiencyWithScale) {
    // Two traces: one clean, one with occasional 10x-slow steps.
    NodeTrace clean = constant_trace(100, 100000);
    NodeTrace noisy = clean;
    for (std::size_t s = 0; s < noisy.step_cycles.size(); s += 10) {
        noisy.step_cycles[s] = 1'000'000;
    }
    ScaleModel m({clean, noisy}, sim::ClockSpec{1'000'000'000});
    const double e1 = m.project(1, 3).efficiency;
    const double e16 = m.project(16, 3).efficiency;
    const double e256 = m.project(256, 3).efficiency;
    EXPECT_GT(e1, e16);
    EXPECT_GE(e16, e256);
    // At 256 nodes nearly every step samples at least one slow node.
    EXPECT_LT(e256, 0.2);
}

TEST(ScaleModel, ProjectionIsDeterministic) {
    NodeTrace a = constant_trace(30, 50000);
    a.step_cycles[7] = 400000;
    ScaleModel m({a, constant_trace(30, 52000)}, sim::ClockSpec{1'000'000'000});
    const ScaleResult r1 = m.project(64, 99);
    const ScaleResult r2 = m.project(64, 99);
    EXPECT_EQ(r1.total_us, r2.total_us);
    EXPECT_EQ(r1.efficiency, r2.efficiency);
}

TEST(ScaleModel, RejectsMismatchedTraces) {
    EXPECT_THROW(ScaleModel({}, sim::ClockSpec{}), std::invalid_argument);
    EXPECT_THROW(
        ScaleModel({constant_trace(10, 1), constant_trace(9, 1)}, sim::ClockSpec{}),
        std::invalid_argument);
    ScaleModel ok({constant_trace(10, 1)}, sim::ClockSpec{});
    EXPECT_THROW((void)ok.project(0, 1), std::invalid_argument);
}

TEST(ScaleModel, SweepAveragesTrials) {
    ScaleModel m({constant_trace(20, 1000), constant_trace(20, 2000)},
                 sim::ClockSpec{1'000'000'000});
    const auto sweep = m.sweep({1, 8}, 4, 5);
    ASSERT_EQ(sweep.size(), 2u);
    EXPECT_EQ(sweep[0].nodes, 1);
    EXPECT_GT(sweep[0].efficiency, sweep[1].efficiency);
}

// End-to-end: detailed traces from the three configurations keep the LWK
// ordering after projection to many nodes.
TEST(ScaleIntegration, LinuxLosesMoreEfficiencyAtScaleThanKitten) {
    wl::WorkloadSpec spec = wl::nas_lu_spec();
    spec.units_per_thread_step /= 16;
    spec.supersteps = 150;
    const sim::ClockSpec clock{1'100'000'000};

    const auto native_tr =
        collect_traces(core::SchedulerKind::kNativeKitten, spec, 3, 11);
    const auto kitten_tr =
        collect_traces(core::SchedulerKind::kKittenPrimary, spec, 3, 11);
    const auto linux_tr =
        collect_traces(core::SchedulerKind::kLinuxPrimary, spec, 3, 11);

    ScaleModel native(native_tr, clock), kitten(kitten_tr, clock),
        linux_m(linux_tr, clock);
    const double en = native.project(256, 5).efficiency;
    const double ek = kitten.project(256, 5).efficiency;
    const double el = linux_m.project(256, 5).efficiency;
    // Strict ordering at scale: native >= kitten > linux. (The absolute gap
    // depends on step length; this scaled-down workload has ~0.35 ms steps,
    // so per-step noise fractions are exaggerated relative to the bench.)
    EXPECT_GE(en, ek);
    EXPECT_GT(ek, el + 0.02);
}

TEST(Platform, ThunderX2PresetShape) {
    arch::Platform p(arch::PlatformConfig::thunderx2());
    EXPECT_EQ(p.ncores(), 28);
    EXPECT_EQ(p.engine().clock().hz, 2'000'000'000u);
    EXPECT_LT(p.perf().nested_walk, arch::PerfModel{}.nested_walk);
}

}  // namespace
}  // namespace hpcsec::cluster
