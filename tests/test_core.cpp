// Integration-layer tests: attestation chain, image signatures, job-control
// protocol and channel, Node assembly in every configuration.
#include <gtest/gtest.h>

#include "core/attest.h"
#include "core/harness.h"
#include "core/jobproto.h"
#include "core/jobs.h"
#include "core/node.h"
#include "core/signature.h"

namespace hpcsec::core {
namespace {

std::vector<std::uint8_t> seed(std::uint8_t fill) {
    return std::vector<std::uint8_t>(32, fill);
}

// --- AttestationChain --------------------------------------------------------

TEST(Attestation, ExtendChangesAccumulator) {
    AttestationChain c;
    const crypto::Digest before = c.accumulator();
    c.extend("bl2", Node::make_image("bl2"));
    EXPECT_FALSE(crypto::digest_equal(before, c.accumulator()));
    EXPECT_EQ(c.log().size(), 1u);
}

TEST(Attestation, OrderMatters) {
    AttestationChain a, b;
    a.extend("x", Node::make_image("x"));
    a.extend("y", Node::make_image("y"));
    b.extend("y", Node::make_image("y"));
    b.extend("x", Node::make_image("x"));
    EXPECT_FALSE(crypto::digest_equal(a.accumulator(), b.accumulator()));
}

TEST(Attestation, ReplayMatchesHonestLog) {
    AttestationChain c;
    c.extend("bl2", Node::make_image("bl2"));
    c.extend("hafnium", Node::make_image("hafnium"));
    EXPECT_TRUE(c.replay_matches());
}

TEST(Attestation, ReplayDetectsTamperedLog) {
    AttestationChain c;
    c.extend("bl2", Node::make_image("bl2"));
    c.extend("hafnium", Node::make_image("hafnium"));
    auto log = c.log();
    log[1].measurement[0] ^= 1;  // attacker rewrites the log entry
    EXPECT_FALSE(
        crypto::digest_equal(AttestationChain::replay(log), c.accumulator()));
}

TEST(Attestation, QuoteVerifies) {
    AttestationChain c;
    c.extend("image", Node::make_image("image"));
    auto key = crypto::LamportKeyPair::generate(seed(1));
    const crypto::Digest nonce = crypto::Sha256::hash("verifier nonce");
    const auto q = c.quote(key, nonce);
    ASSERT_TRUE(q.has_value());
    EXPECT_TRUE(AttestationChain::verify_quote(*q, c.accumulator(), key.public_key()));
}

TEST(Attestation, QuoteRejectsWrongExpectedValue) {
    AttestationChain c;
    c.extend("image", Node::make_image("image"));
    auto key = crypto::LamportKeyPair::generate(seed(2));
    const auto q = c.quote(key, crypto::Sha256::hash("n"));
    ASSERT_TRUE(q.has_value());
    crypto::Digest other{};
    EXPECT_FALSE(AttestationChain::verify_quote(*q, other, key.public_key()));
}

TEST(Attestation, QuoteIsOneTimePerKey) {
    AttestationChain c;
    c.extend("image", Node::make_image("image"));
    auto key = crypto::LamportKeyPair::generate(seed(3));
    ASSERT_TRUE(c.quote(key, crypto::Sha256::hash("n1")).has_value());
    EXPECT_FALSE(c.quote(key, crypto::Sha256::hash("n2")).has_value());
}

// --- Image signatures ---------------------------------------------------------

TEST(Signature, SignedImageVerifies) {
    ImageSigner signer(seed(10));
    ImageVerifier verifier;
    verifier.enroll(signer.public_key());
    const auto img = signer.sign("compute", Node::make_image("compute"));
    ASSERT_TRUE(img.has_value());
    EXPECT_TRUE(verifier.verify(*img));
}

TEST(Signature, TamperedImageRejected) {
    ImageSigner signer(seed(11));
    ImageVerifier verifier;
    verifier.enroll(signer.public_key());
    auto img = signer.sign("compute", Node::make_image("compute"));
    ASSERT_TRUE(img.has_value());
    img->bytes[5] ^= 0xff;
    EXPECT_FALSE(verifier.verify(*img));
}

TEST(Signature, UnenrolledKeyRejected) {
    ImageSigner signer(seed(12));
    ImageVerifier verifier;  // nothing enrolled
    const auto img = signer.sign("compute", Node::make_image("compute"));
    ASSERT_TRUE(img.has_value());
    EXPECT_FALSE(verifier.verify(*img));
}

TEST(Signature, KeystoreMeasurementTracksEnrollment) {
    ImageSigner s1(seed(13)), s2(seed(14));
    ImageVerifier v;
    const crypto::Digest m0 = v.keystore_measurement();
    v.enroll(s1.public_key());
    const crypto::Digest m1 = v.keystore_measurement();
    v.enroll(s2.public_key());
    const crypto::Digest m2 = v.keystore_measurement();
    EXPECT_FALSE(crypto::digest_equal(m0, m1));
    EXPECT_FALSE(crypto::digest_equal(m1, m2));
}

// --- Job protocol ----------------------------------------------------------------

TEST(JobProto, CommandRoundTrip) {
    JobCommand cmd;
    cmd.op = JobOp::kMigrateVcpu;
    cmd.vm = 3;
    cmd.vcpu = 1;
    cmd.arg = 2;
    cmd.tag = 77;
    const auto decoded = decode_command(encode(cmd));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op, JobOp::kMigrateVcpu);
    EXPECT_EQ(decoded->vm, 3u);
    EXPECT_EQ(decoded->vcpu, 1u);
    EXPECT_EQ(decoded->arg, 2u);
    EXPECT_EQ(decoded->tag, 77u);
}

TEST(JobProto, ReplyRoundTrip) {
    JobReply r;
    r.tag = 5;
    r.status = -1;
    r.value = 0xbeef;
    const auto decoded = decode_reply(encode(r));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->status, -1);
    EXPECT_EQ(decoded->value, 0xbeefu);
}

TEST(JobProto, RejectsBadMagicAndShortFrames) {
    EXPECT_FALSE(decode_command({1, 2, 3}).has_value());
    EXPECT_FALSE(decode_command({0, 1, 2, 3, 4, 5}).has_value());
    EXPECT_FALSE(decode_reply({kJobMagic, 0, 0, 0}).has_value());
    // Out-of-range opcode.
    EXPECT_FALSE(decode_command({kJobMagic, 99, 0, 0, 0, 0}).has_value());
}

// --- Node assembly -----------------------------------------------------------------

TEST(Node, BootChainCoversAllStages) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 1);
    cfg.with_super_secondary = true;
    Node node(cfg);
    node.boot();
    const auto& log = node.attestation().log();
    std::vector<std::string> names;
    for (const auto& stage : log) names.push_back(stage.name);
    EXPECT_EQ(names,
              (std::vector<std::string>{"tf-a-bl2", "tf-a-bl31", "hafnium-spm",
                                        "kitten-primary", "login", "compute"}));
    EXPECT_TRUE(node.attestation().replay_matches());
}

TEST(Node, NativeBootChainHasNoHypervisor) {
    Node node(Harness::default_config(SchedulerKind::kNativeKitten, 1));
    node.boot();
    for (const auto& stage : node.attestation().log()) {
        EXPECT_EQ(stage.name.find("hafnium"), std::string::npos);
    }
}

TEST(Node, DoubleBootThrows) {
    Node node(Harness::default_config(SchedulerKind::kNativeKitten, 1));
    node.boot();
    EXPECT_THROW(node.boot(), std::logic_error);
}

TEST(Node, RunBeforeBootThrows) {
    Node node(Harness::default_config(SchedulerKind::kNativeKitten, 1));
    wl::ParallelWorkload w(wl::spinner_spec(4));
    EXPECT_THROW(node.run_workload(w, 1.0), std::logic_error);
}

TEST(Node, SignatureVerificationGateBoots) {
    ImageSigner signer(seed(20));
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 1);
    cfg.verify_signatures = true;
    cfg.trusted_keys = {signer.public_key()};
    const auto img = signer.sign("compute", Node::make_image("kitten-guest"));
    ASSERT_TRUE(img.has_value());
    cfg.signed_images = {*img};
    Node node(cfg);
    node.boot();
    EXPECT_TRUE(node.booted());
    // The keystore measurement is part of the boot chain.
    bool found = false;
    for (const auto& s : node.attestation().log()) {
        found |= s.name == "image-keystore";
    }
    EXPECT_TRUE(found);
}

TEST(Node, SignatureVerificationRejectsTamperedImage) {
    ImageSigner signer(seed(21));
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 1);
    cfg.verify_signatures = true;
    cfg.trusted_keys = {signer.public_key()};
    auto img = signer.sign("compute", Node::make_image("kitten-guest"));
    ASSERT_TRUE(img.has_value());
    img->bytes[0] ^= 1;
    cfg.signed_images = {*img};
    Node node(cfg);
    EXPECT_THROW(node.boot(), std::runtime_error);
}

TEST(Node, SignatureVerificationRequiresComputeImage) {
    ImageSigner signer(seed(22));
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 1);
    cfg.verify_signatures = true;
    cfg.trusted_keys = {signer.public_key()};
    const auto img = signer.sign("other", Node::make_image("other"));
    cfg.signed_images = {*img};
    Node node(cfg);
    EXPECT_THROW(node.boot(), std::runtime_error);
}

TEST(Node, SecureComputeVmLandsInSecureWorld) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 1);
    cfg.secure_compute_vm = true;
    Node node(cfg);
    node.boot();
    hafnium::Vm* vm = node.compute_vm();
    ASSERT_NE(vm, nullptr);
    EXPECT_EQ(vm->world(), arch::World::kSecure);
    EXPECT_EQ(node.platform().mem().world_of(vm->mem_base), arch::World::kSecure);
    // And it still runs work.
    wl::WorkloadSpec s;
    s.name = "tiny";
    s.nthreads = 4;
    s.supersteps = 2;
    s.units_per_thread_step = 10000;
    s.profile.cycles_per_unit = 10;
    wl::ParallelWorkload w(s);
    EXPECT_GT(node.run_workload(w, 30.0), 0.0);
}

TEST(Node, SuperSecondaryOwnsDevices) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 1);
    cfg.with_super_secondary = true;
    Node node(cfg);
    node.boot();
    ASSERT_NE(node.login_vm(), nullptr);
    EXPECT_EQ(node.spm()->devices_of(node.login_vm()->id()).size(),
              node.platform().config().devices.size());
    EXPECT_TRUE(node.spm()->devices_of(arch::kPrimaryVmId).empty());
}

TEST(Node, MakeImageIsDeterministicPerName) {
    EXPECT_EQ(Node::make_image("a"), Node::make_image("a"));
    EXPECT_NE(Node::make_image("a"), Node::make_image("b"));
    EXPECT_EQ(Node::make_image("a", 128).size(), 128u);
}

// --- JobControl end-to-end ------------------------------------------------------------

struct JobFixture : ::testing::Test {
    NodeConfig cfg = [] {
        NodeConfig c = Harness::default_config(SchedulerKind::kKittenPrimary, 5);
        c.with_super_secondary = true;
        return c;
    }();
    Node node{cfg};
    std::unique_ptr<JobControl> jobs;

    void SetUp() override {
        node.boot();
        jobs = std::make_unique<JobControl>(node);
    }
};

TEST_F(JobFixture, PingPong) {
    JobCommand cmd;
    cmd.op = JobOp::kPing;
    const auto reply = jobs->request(cmd, 3.0);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->status, 0);
    EXPECT_EQ(reply->value, 0x706f6e67u);
    EXPECT_EQ(jobs->commands_processed(), 1u);
}

TEST_F(JobFixture, QueryVmReturnsPackedInfo) {
    JobCommand cmd;
    cmd.op = JobOp::kQueryVm;
    cmd.vm = node.compute_vm()->id();
    const auto reply = jobs->request(cmd, 3.0);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->status, 0);
    EXPECT_EQ(reply->value & 0xffff, 4u);  // vcpus
}

TEST_F(JobFixture, MigrateVcpuViaChannel) {
    JobCommand cmd;
    cmd.op = JobOp::kMigrateVcpu;
    cmd.vm = node.compute_vm()->id();
    cmd.vcpu = 2;
    cmd.arg = 0;
    const auto reply = jobs->request(cmd, 3.0);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->status, 0);
    EXPECT_EQ(node.compute_vm()->vcpu(2).assigned_core, 0);
}

TEST_F(JobFixture, BadVmIdReportsError) {
    JobCommand cmd;
    cmd.op = JobOp::kStopVm;
    cmd.vm = 99;
    const auto reply = jobs->request(cmd, 3.0);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->status, -1);
}

TEST_F(JobFixture, MultipleSequentialRequests) {
    for (int i = 0; i < 3; ++i) {
        JobCommand cmd;
        cmd.op = JobOp::kPing;
        const auto reply = jobs->request(cmd, 3.0);
        ASSERT_TRUE(reply.has_value()) << "request " << i;
    }
    EXPECT_EQ(jobs->commands_processed(), 3u);
}

TEST(JobControl, RequiresKittenPrimaryWithLogin) {
    Node bare(Harness::default_config(SchedulerKind::kKittenPrimary, 2));
    bare.boot();
    EXPECT_THROW(JobControl j(bare), std::logic_error);
}

// --- IRQ routing policies ---------------------------------------------------------------

TEST(Routing, SelectivePolicySkipsPrimary) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 3);
    cfg.with_super_secondary = true;
    cfg.routing = hafnium::IrqRoutingPolicy::kSelective;
    Node node(cfg);
    node.boot();
    int seen = -1;
    node.login_guest()->device_irq_hook = [&](int irq) { seen = irq; };

    node.platform().irqc().raise_external(32);
    node.run_for(0.05);
    EXPECT_EQ(seen, 32);
    // Direct routing: the SPM forwarded it without a primary hypercall.
    EXPECT_GE(node.spm()->stats().forwarded_device_irqs, 1u);
    EXPECT_EQ(node.kitten()->stats().forwarded_irqs, 0u);
}

TEST(Routing, ForwardPolicyGoesThroughPrimary) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 3);
    cfg.with_super_secondary = true;
    cfg.routing = hafnium::IrqRoutingPolicy::kAllToPrimary;
    Node node(cfg);
    node.boot();
    int seen = -1;
    node.login_guest()->device_irq_hook = [&](int irq) { seen = irq; };

    node.platform().irqc().raise_external(32);
    node.run_for(0.05);
    EXPECT_EQ(seen, 32);
    EXPECT_GE(node.kitten()->stats().forwarded_irqs, 1u);
}

// --- Harness ----------------------------------------------------------------------------

TEST(HarnessTest, RowHasAllThreeConfigs) {
    Harness::Options opt;
    opt.trials = 2;
    Harness h(opt);
    wl::WorkloadSpec s;
    s.name = "quick";
    s.metric = "op/s";
    s.nthreads = 4;
    s.supersteps = 2;
    s.units_per_thread_step = 20000;
    s.profile.cycles_per_unit = 10;
    s.metric_per_unit = 1.0;
    const ExperimentRow row = h.run_row(s);
    for (const auto& cell : row.cells) {
        EXPECT_EQ(cell.n, 2);
        EXPECT_GT(cell.mean, 0.0);
    }
    const std::string raw = Harness::format_raw({row});
    EXPECT_NE(raw.find("Native"), std::string::npos);
    EXPECT_NE(raw.find("quick"), std::string::npos);
    const std::string norm = Harness::format_normalized({row});
    EXPECT_NE(norm.find("1"), std::string::npos);
}

TEST(HarnessTest, SelfishExperimentShapes) {
    const auto native =
        run_selfish_experiment(SchedulerKind::kNativeKitten, 3.0, 123);
    const auto kitten =
        run_selfish_experiment(SchedulerKind::kKittenPrimary, 3.0, 123);
    const auto linux_cfg =
        run_selfish_experiment(SchedulerKind::kLinuxPrimary, 3.0, 123);
    // Paper's qualitative claims:
    //  - Kitten-primary detour count is the same order as native;
    EXPECT_LT(kitten.detours_all_cores, native.detours_all_cores * 4);
    //  - Kitten-primary amplitudes are slightly larger;
    EXPECT_GT(kitten.max_detour_us, native.max_detour_us);
    //  - Linux is dramatically noisier in count and total lost time.
    EXPECT_GT(linux_cfg.detours_all_cores, kitten.detours_all_cores * 5);
    EXPECT_GT(linux_cfg.total_detour_us_all, kitten.total_detour_us_all * 5);
    const std::string text = format_selfish(native);
    EXPECT_NE(text.find("config=Native"), std::string::npos);
}

}  // namespace
}  // namespace hpcsec::core
