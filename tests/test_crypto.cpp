// Crypto tests: FIPS 180-4 / RFC 4231 vectors and Lamport OTS properties.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/lamport.h"
#include "crypto/sha256.h"

namespace hpcsec::crypto {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
    return {s.begin(), s.end()};
}

// --- SHA-256 (FIPS 180-4 / NIST CAVS vectors) ---------------------------------

TEST(Sha256, EmptyString) {
    EXPECT_EQ(to_hex(Sha256::hash("")),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(to_hex(Sha256::hash("abc")),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(to_hex(Sha256::hash(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(to_hex(h.finalize()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
    // 64-byte message exercises the padding-into-second-block path.
    const std::string m(64, 'x');
    Sha256 one;
    one.update(m);
    Sha256 split;
    split.update(m.substr(0, 37));
    split.update(m.substr(37));
    EXPECT_EQ(to_hex(one.finalize()), to_hex(split.finalize()));
}

TEST(Sha256, IncrementalMatchesOneShot) {
    const std::string m = "the quick brown fox jumps over the lazy dog";
    Sha256 inc;
    for (const char c : m) inc.update(std::string_view(&c, 1));
    EXPECT_EQ(to_hex(inc.finalize()), to_hex(Sha256::hash(m)));
}

TEST(Sha256, ResetAllowsReuse) {
    Sha256 h;
    h.update("garbage");
    (void)h.finalize();
    h.reset();
    h.update("abc");
    EXPECT_EQ(to_hex(h.finalize()),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DigestEqualConstantTimeSemantics) {
    const Digest a = Sha256::hash("a");
    const Digest b = Sha256::hash("b");
    EXPECT_TRUE(digest_equal(a, a));
    EXPECT_FALSE(digest_equal(a, b));
}

// --- HMAC-SHA256 (RFC 4231) -----------------------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
    const std::vector<std::uint8_t> key(20, 0x0b);
    const auto msg = bytes("Hi There");
    EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
    const auto key = bytes("Jefe");
    const auto msg = bytes("what do ya want for nothing?");
    EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
    const std::vector<std::uint8_t> key(20, 0xaa);
    const std::vector<std::uint8_t> msg(50, 0xdd);
    EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
    // RFC 4231 case 6: 131-byte key.
    const std::vector<std::uint8_t> key(131, 0xaa);
    const auto msg = bytes("Test Using Larger Than Block-Size Key - Hash Key First");
    EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- Lamport OTS ------------------------------------------------------------------

std::vector<std::uint8_t> seed(std::uint8_t fill) {
    return std::vector<std::uint8_t>(32, fill);
}

TEST(Lamport, SignVerifyRoundTrip) {
    auto kp = LamportKeyPair::generate(seed(1));
    const Digest msg = Sha256::hash("release v1.0 image");
    const auto sig = kp.sign(msg);
    ASSERT_TRUE(sig.has_value());
    EXPECT_TRUE(lamport_verify(kp.public_key(), msg, *sig));
}

TEST(Lamport, WrongMessageFails) {
    auto kp = LamportKeyPair::generate(seed(2));
    const Digest msg = Sha256::hash("genuine");
    const auto sig = kp.sign(msg);
    ASSERT_TRUE(sig.has_value());
    EXPECT_FALSE(lamport_verify(kp.public_key(), Sha256::hash("forged"), *sig));
}

TEST(Lamport, WrongKeyFails) {
    auto kp1 = LamportKeyPair::generate(seed(3));
    auto kp2 = LamportKeyPair::generate(seed(4));
    const Digest msg = Sha256::hash("msg");
    const auto sig = kp1.sign(msg);
    ASSERT_TRUE(sig.has_value());
    EXPECT_FALSE(lamport_verify(kp2.public_key(), msg, *sig));
}

TEST(Lamport, OneTimePropertyEnforced) {
    auto kp = LamportKeyPair::generate(seed(5));
    ASSERT_TRUE(kp.sign(Sha256::hash("first")).has_value());
    EXPECT_TRUE(kp.used());
    EXPECT_FALSE(kp.sign(Sha256::hash("second")).has_value());
}

TEST(Lamport, TamperedSignatureFails) {
    auto kp = LamportKeyPair::generate(seed(6));
    const Digest msg = Sha256::hash("msg");
    auto sig = kp.sign(msg);
    ASSERT_TRUE(sig.has_value());
    sig->preimages[17][3] ^= 0x01;  // flip one bit of one preimage
    EXPECT_FALSE(lamport_verify(kp.public_key(), msg, *sig));
}

TEST(Lamport, DeterministicKeyGeneration) {
    auto kp1 = LamportKeyPair::generate(seed(7));
    auto kp2 = LamportKeyPair::generate(seed(7));
    EXPECT_EQ(kp1.public_key(), kp2.public_key());
    auto kp3 = LamportKeyPair::generate(seed(8));
    EXPECT_FALSE(kp1.public_key() == kp3.public_key());
}

TEST(Lamport, FingerprintIsStable) {
    auto kp = LamportKeyPair::generate(seed(9));
    const Digest f1 = kp.public_key().fingerprint();
    const Digest f2 = kp.public_key().fingerprint();
    EXPECT_TRUE(digest_equal(f1, f2));
}

// Property sweep: random messages always verify with the right key and
// never with a bit-flipped message.
class LamportProperty : public ::testing::TestWithParam<int> {};

TEST_P(LamportProperty, RandomMessageRoundTrip) {
    const int i = GetParam();
    auto kp = LamportKeyPair::generate(seed(static_cast<std::uint8_t>(40 + i)));
    const Digest msg = Sha256::hash("message-" + std::to_string(i));
    const auto sig = kp.sign(msg);
    ASSERT_TRUE(sig.has_value());
    EXPECT_TRUE(lamport_verify(kp.public_key(), msg, *sig));
    Digest flipped = msg;
    flipped[static_cast<std::size_t>(i) % 32] ^=
        static_cast<std::uint8_t>(1u << (i % 8));
    EXPECT_FALSE(lamport_verify(kp.public_key(), flipped, *sig));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LamportProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace hpcsec::crypto
