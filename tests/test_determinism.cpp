// Determinism: identical seeds reproduce identical timelines; different
// seeds differ. This is the property everything else (benchmark stdevs,
// property tests, debugging) rests on.
#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/node.h"
#include "workloads/nas.h"
#include "workloads/randomaccess.h"

namespace hpcsec::core {
namespace {

class DeterminismPerConfig : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(DeterminismPerConfig, SameSeedSameRuntime) {
    wl::WorkloadSpec spec = wl::nas_cg_spec();
    spec.units_per_thread_step /= 10;
    Harness::Options opt;
    opt.trials = 1;
    opt.measurement_noise = false;
    Harness h(opt);
    const auto a = h.run_trial(GetParam(), spec, 42);
    const auto b = h.run_trial(GetParam(), spec, 42);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.score, b.score);
}

TEST_P(DeterminismPerConfig, DifferentSeedsDifferInNoisyConfigs) {
    wl::WorkloadSpec spec = wl::nas_cg_spec();
    spec.units_per_thread_step /= 10;
    Harness::Options opt;
    opt.trials = 1;
    opt.measurement_noise = false;
    Harness h(opt);
    const auto a = h.run_trial(GetParam(), spec, 1);
    const auto b = h.run_trial(GetParam(), spec, 2);
    if (GetParam() == SchedulerKind::kLinuxPrimary) {
        // Random noise arrivals and tick phases shift the timeline.
        EXPECT_NE(a.seconds, b.seconds);
    } else {
        // Tick phases still differ, but runtimes stay close.
        EXPECT_NEAR(a.seconds / b.seconds, 1.0, 0.01);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, DeterminismPerConfig,
    ::testing::Values(SchedulerKind::kNativeKitten, SchedulerKind::kKittenPrimary,
                      SchedulerKind::kLinuxPrimary),
    [](const auto& info) { return to_string(info.param); });

TEST(Determinism, SelfishSeriesBitwiseReproducible) {
    const auto a = run_selfish_experiment(SchedulerKind::kLinuxPrimary, 2.0, 9);
    const auto b = run_selfish_experiment(SchedulerKind::kLinuxPrimary, 2.0, 9);
    ASSERT_EQ(a.detours.size(), b.detours.size());
    for (std::size_t i = 0; i < a.detours.size(); ++i) {
        EXPECT_EQ(a.detours[i].at_seconds, b.detours[i].at_seconds);
        EXPECT_EQ(a.detours[i].duration_us, b.detours[i].duration_us);
    }
}

TEST(Determinism, SpmStatsReproducible) {
    auto run = [](std::uint64_t seed) {
        Node node(Harness::default_config(SchedulerKind::kKittenPrimary, seed));
        node.boot();
        wl::WorkloadSpec spec = wl::randomaccess_spec();
        spec.units_per_thread_step /= 16;
        wl::ParallelWorkload w(spec);
        node.run_workload(w, 60.0);
        return node.spm()->stats();
    };
    const auto a = run(7);
    const auto b = run(7);
    EXPECT_EQ(a.hypercalls, b.hypercalls);
    EXPECT_EQ(a.world_switches, b.world_switches);
    EXPECT_EQ(a.vm_exits, b.vm_exits);
    EXPECT_EQ(a.virq_injections, b.virq_injections);
}

}  // namespace
}  // namespace hpcsec::core
