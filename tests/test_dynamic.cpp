// Dynamic-partitioning tests (paper §VII future work): runtime VM creation
// gated on signature verification, teardown with memory reclaim, and the
// isolation invariants holding across churn.
#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/jobs.h"
#include "core/node.h"
#include "core/signature.h"

namespace hpcsec::core {
namespace {

std::vector<std::uint8_t> seed(std::uint8_t fill) {
    return std::vector<std::uint8_t>(32, fill);
}

struct DynamicFixture : ::testing::Test {
    ImageSigner signer{seed(50)};
    NodeConfig cfg;
    std::unique_ptr<Node> node;

    void SetUp() override {
        cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 11);
        cfg.trusted_keys = {signer.public_key()};
        cfg.verify_signatures = false;  // boot-time compute VM unsigned here
        node = std::make_unique<Node>(cfg);
        node->boot();
        // Enroll the provisioned key (boot does this when verify_signatures
        // is on; do it explicitly for the dynamic-only path).
        node->verifier().enroll(signer.public_key());
    }

    SignedImage make_signed(const std::string& name, ImageSigner& s) {
        auto img = s.sign(name, Node::make_image(name));
        EXPECT_TRUE(img.has_value()) << "one-time key already used";
        return *img;
    }
};

TEST_F(DynamicFixture, LaunchSignedVmAtRuntime) {
    const int before = node->spm()->vm_count();
    const arch::VmId id =
        node->launch_dynamic_vm(make_signed("burst-job", signer), 64ull << 20, 2);
    EXPECT_EQ(node->spm()->vm_count(), before + 1);
    hafnium::Vm& vm = node->spm()->vm(id);
    EXPECT_EQ(vm.role(), hafnium::VmRole::kSecondary);
    EXPECT_EQ(vm.vcpu_count(), 2);
    EXPECT_TRUE(node->platform().mem().owned_span(vm.mem_base, vm.mem_bytes(), id));
    // Measured into the runtime chain.
    bool measured = false;
    for (const auto& s : node->attestation().log()) {
        measured |= s.name == "runtime:burst-job";
    }
    EXPECT_TRUE(measured);
}

TEST_F(DynamicFixture, UnsignedLaunchRejected) {
    ImageSigner rogue(seed(51));  // key NOT enrolled
    EXPECT_THROW(
        node->launch_dynamic_vm(make_signed("evil", rogue), 64ull << 20, 2),
        std::runtime_error);
}

TEST_F(DynamicFixture, TamperedImageRejected) {
    SignedImage img = make_signed("job", signer);
    img.bytes[17] ^= 0x80;
    EXPECT_THROW(node->launch_dynamic_vm(img, 64ull << 20, 2), std::runtime_error);
}

TEST_F(DynamicFixture, NoEnrolledKeysMeansNoDynamicVms) {
    NodeConfig bare = Harness::default_config(SchedulerKind::kKittenPrimary, 12);
    Node node2(bare);
    node2.boot();
    EXPECT_THROW(
        node2.launch_dynamic_vm(make_signed("job", signer), 64ull << 20, 1),
        std::runtime_error);
}

TEST_F(DynamicFixture, DynamicVmRunsWork) {
    const arch::VmId id =
        node->launch_dynamic_vm(make_signed("job", signer), 64ull << 20, 4);
    wl::WorkloadSpec s;
    s.name = "dyn";
    s.nthreads = 4;
    s.supersteps = 3;
    s.units_per_thread_step = 100000;
    s.profile.cycles_per_unit = 10;
    wl::ParallelWorkload w(s);
    const double secs = node->run_workload_on(id, w, 30.0);
    EXPECT_TRUE(w.finished());
    EXPECT_GT(secs, 0.0);
}

TEST_F(DynamicFixture, DestroyReclaimsMemory) {
    const auto frames_before = node->platform().mem().allocated_frames();
    const arch::VmId id =
        node->launch_dynamic_vm(make_signed("ephemeral", signer), 64ull << 20, 2);
    EXPECT_GT(node->platform().mem().allocated_frames(), frames_before);
    node->destroy_dynamic_vm(id);
    EXPECT_EQ(node->platform().mem().allocated_frames(), frames_before);
    EXPECT_TRUE(node->spm()->vm(id).destroyed);
    // A destroyed VM can no longer be entered or messaged.
    EXPECT_EQ(node->spm()
                  ->hypercall(0, arch::kPrimaryVmId, hafnium::Call::kVcpuRun,
                              {id, 0, 0, 0})
                  .error,
              hafnium::HfError::kNotFound);
    std::uint64_t v = 0;
    EXPECT_FALSE(node->spm()->vm_read64(id, 0x1000, v));
}

TEST_F(DynamicFixture, DestroyWhileRunningIsForcedOffCores) {
    const arch::VmId id =
        node->launch_dynamic_vm(make_signed("spinner", signer), 64ull << 20, 4);
    wl::ParallelWorkload w(wl::spinner_spec(4));
    w.set_mode(arch::TranslationMode::kTwoStage);
    for (int i = 0; i < 4; ++i) node->guest_of(id)->set_thread(i, &w.thread(i));
    node->guest_of(id)->wake_runnable_vcpus();
    for (int i = 0; i < 4; ++i) {
        node->spm()->make_vcpu_ready(node->spm()->vm(id).vcpu(i));
        node->primary_os()->on_vcpu_wake(node->spm()->vm(id).vcpu(i));
    }
    node->run_for(0.2);
    EXPECT_GT(node->spm()->vm(id).vcpu(0).runs, 0u);
    node->destroy_dynamic_vm(id);  // must not throw despite running VCPUs
    EXPECT_TRUE(node->spm()->vm(id).destroyed);
    node->run_for(0.2);  // node keeps ticking fine afterwards
}

TEST_F(DynamicFixture, MemoryReuseAcrossChurnStaysIsolated) {
    // Launch/destroy repeatedly; a later VM reusing earlier frames must not
    // see stale data (frames are scrubbed). One Lamport key signs exactly
    // one image, so each generation gets its own provisioned signer.
    ImageSigner gen1_signer(seed(53));
    node->verifier().enroll(gen1_signer.public_key());
    const arch::VmId a =
        node->launch_dynamic_vm(make_signed("gen0", signer), 32ull << 20, 1);
    ASSERT_TRUE(node->spm()->vm_write64(a, 0x2000, 0xdeadbeef));
    node->destroy_dynamic_vm(a);
    const arch::VmId b =
        node->launch_dynamic_vm(make_signed("gen1", gen1_signer), 32ull << 20, 1);
    // Same physical window is reused (first-fit)...
    EXPECT_EQ(node->spm()->vm(b).mem_base, node->spm()->vm(a).mem_base);
    std::uint64_t leaked = 1;
    ASSERT_TRUE(node->spm()->vm_read64(b, 0x2000, leaked));
    EXPECT_EQ(leaked, 0u) << "stale data leaked across partition churn";
}

TEST_F(DynamicFixture, CannotDestroyPrimary) {
    EXPECT_THROW(node->spm()->destroy_vm(arch::kPrimaryVmId), std::invalid_argument);
}

TEST_F(DynamicFixture, DuplicateNameRejected) {
    (void)node->launch_dynamic_vm(make_signed("dup", signer), 32ull << 20, 1);
    ImageSigner signer2(seed(52));
    node->verifier().enroll(signer2.public_key());
    EXPECT_THROW(
        node->launch_dynamic_vm(make_signed("dup", signer2), 32ull << 20, 1),
        std::invalid_argument);
}

TEST_F(DynamicFixture, CreateAndDestroyViaJobChannel) {
    // Full paper workflow: login VM stages a job and manages it remotely.
    NodeConfig jcfg = Harness::default_config(SchedulerKind::kKittenPrimary, 13);
    jcfg.with_super_secondary = true;
    jcfg.trusted_keys = {signer.public_key()};
    Node jnode(jcfg);
    jnode.boot();
    jnode.verifier().enroll(signer.public_key());
    ImageSigner s2(seed(60));
    jnode.verifier().enroll(s2.public_key());
    const std::size_t idx = jnode.stage_image(*s2.sign("batch-job", Node::make_image("batch-job")));
    JobControl jobs(jnode);

    JobCommand create;
    create.op = JobOp::kCreateVm;
    create.arg = idx;
    create.vm = 32;   // MiB
    create.vcpu = 2;
    const auto created = jobs.request(create, 3.0);
    ASSERT_TRUE(created.has_value());
    EXPECT_EQ(created->status, 0);
    const auto new_id = static_cast<arch::VmId>(created->value);
    EXPECT_EQ(jnode.spm()->vm(new_id).name(), "batch-job");

    JobCommand destroy;
    destroy.op = JobOp::kDestroyVm;
    destroy.vm = new_id;
    const auto destroyed = jobs.request(destroy, 3.0);
    ASSERT_TRUE(destroyed.has_value());
    EXPECT_EQ(destroyed->status, 0);
    EXPECT_TRUE(jnode.spm()->vm(new_id).destroyed);
}

}  // namespace
}  // namespace hpcsec::core
