// Failure injection: guest data aborts, console ownership, malicious
// job-control frames, and mailbox misuse — the paths a hostile or buggy
// partition would exercise.
#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/jobs.h"
#include "core/node.h"
#include "workloads/workload.h"

namespace hpcsec {
namespace {

using core::Harness;
using core::Node;
using core::NodeConfig;
using core::SchedulerKind;

// --- guest data aborts -------------------------------------------------------

struct AbortFixture : ::testing::Test {
    Node node{Harness::default_config(SchedulerKind::kKittenPrimary, 21)};
    std::unique_ptr<wl::ParallelWorkload> work;

    void SetUp() override {
        node.boot();
        work = std::make_unique<wl::ParallelWorkload>(wl::spinner_spec(4));
        work->set_mode(arch::TranslationMode::kTwoStage);
        for (int i = 0; i < 4; ++i) {
            node.compute_guest()->set_thread(i, &work->thread(i));
        }
        node.compute_guest()->wake_runnable_vcpus();
        for (int i = 0; i < 4; ++i) {
            node.spm()->make_vcpu_ready(node.compute_vm()->vcpu(i));
            node.primary_os()->on_vcpu_wake(node.compute_vm()->vcpu(i));
        }
        node.run_for(0.1);
    }
};

TEST_F(AbortFixture, InBoundsGuestAccessAllowed) {
    hafnium::Vcpu& vcpu = node.compute_vm()->vcpu(0);
    EXPECT_TRUE(node.spm()->guest_access(vcpu, 0x1000, arch::Access::kWrite));
    EXPECT_EQ(node.spm()->stats().guest_aborts, 0u);
}

TEST_F(AbortFixture, OutOfBoundsAccessAbortsVcpu) {
    hafnium::Vcpu& vcpu = node.compute_vm()->vcpu(1);
    ASSERT_EQ(vcpu.state(), hafnium::VcpuState::kRunning);
    const arch::IpaAddr bad = node.compute_vm()->mem_bytes() + arch::kPageSize;
    EXPECT_FALSE(node.spm()->guest_access(vcpu, bad, arch::Access::kRead));
    EXPECT_EQ(vcpu.state(), hafnium::VcpuState::kAborted);
    EXPECT_EQ(node.spm()->stats().guest_aborts, 1u);
}

TEST_F(AbortFixture, OtherVcpusSurviveOneAbort) {
    hafnium::Vcpu& victim = node.compute_vm()->vcpu(2);
    node.spm()->abort_vcpu(victim);
    node.run_for(0.5);
    // The aborted VCPU never runs again...
    const std::uint64_t runs = victim.runs;
    node.run_for(0.5);
    EXPECT_EQ(victim.runs, runs);
    // ...but its siblings keep executing.
    EXPECT_EQ(node.compute_vm()->vcpu(0).state(), hafnium::VcpuState::kRunning);
    EXPECT_EQ(node.compute_vm()->vcpu(3).state(), hafnium::VcpuState::kRunning);
}

TEST_F(AbortFixture, AbortedVcpuRefusedByVcpuRun) {
    hafnium::Vcpu& victim = node.compute_vm()->vcpu(3);
    node.spm()->abort_vcpu(victim);
    const auto r = node.spm()->hypercall(3, arch::kPrimaryVmId,
                                         hafnium::Call::kVcpuRun,
                                         {node.compute_vm()->id(), 3, 0, 0});
    EXPECT_EQ(r.error, hafnium::HfError::kRetry);
}

TEST_F(AbortFixture, AbortWhileBlockedMarksAborted) {
    hafnium::Vcpu& vcpu = node.compute_vm()->vcpu(0);
    node.spm()->force_stop_vcpu(vcpu);
    vcpu.set_state(hafnium::VcpuState::kBlocked);
    node.spm()->abort_vcpu(vcpu);
    EXPECT_EQ(vcpu.state(), hafnium::VcpuState::kAborted);
}

// --- UART console ownership -----------------------------------------------------

TEST(UartConsole, IoOwnerCanPrintOthersCannot) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 22);
    cfg.with_super_secondary = true;
    Node node(cfg);
    node.boot();
    ASSERT_NE(node.platform().uart(), nullptr);

    // The login VM owns the UART MMIO window: it can write the console.
    const arch::IpaAddr uart_ipa = 0x01C2'8000;  // identity-mapped device
    const std::string msg = "login$ ";
    for (const char c : msg) {
        ASSERT_TRUE(node.spm()->vm_write64(node.login_vm()->id(),
                                           uart_ipa + arch::Uart::kDataReg,
                                           static_cast<std::uint64_t>(c)));
    }
    EXPECT_EQ(node.platform().uart()->output(), msg);
    EXPECT_EQ(node.platform().uart()->bytes_transmitted(), msg.size());

    // Flag register reads as TX-ready for the owner.
    std::uint64_t fr = 0;
    ASSERT_TRUE(node.spm()->vm_read64(node.login_vm()->id(),
                                      uart_ipa + arch::Uart::kFlagReg, fr));
    EXPECT_EQ(fr & arch::Uart::kFlagTxReady, arch::Uart::kFlagTxReady);

    // The primary no longer has the window; the compute VM's write lands in
    // its own RAM, never the device.
    EXPECT_FALSE(node.spm()->vm_write64(arch::kPrimaryVmId,
                                        uart_ipa + arch::Uart::kDataReg, 'X'));
    node.platform().uart()->clear_output();
    ASSERT_TRUE(node.spm()->vm_write64(node.compute_vm()->id(),
                                       uart_ipa + arch::Uart::kDataReg, 'Y'));
    EXPECT_TRUE(node.platform().uart()->output().empty());
}

TEST(UartConsole, PrimaryOwnsConsoleWithoutLoginVm) {
    Node node(Harness::default_config(SchedulerKind::kKittenPrimary, 23));
    node.boot();
    const arch::IpaAddr uart_ipa = 0x01C2'8000;
    ASSERT_TRUE(node.spm()->vm_write64(arch::kPrimaryVmId,
                                       uart_ipa + arch::Uart::kDataReg, 'K'));
    EXPECT_EQ(node.platform().uart()->output(), "K");
}

// --- hostile job-control traffic ---------------------------------------------------

struct HostileChannel : ::testing::Test {
    NodeConfig cfg = [] {
        NodeConfig c = Harness::default_config(SchedulerKind::kKittenPrimary, 24);
        c.with_super_secondary = true;
        return c;
    }();
    Node node{cfg};
    std::unique_ptr<core::JobControl> jobs;

    void SetUp() override {
        node.boot();
        jobs = std::make_unique<core::JobControl>(node);
    }

    void send_raw(const std::vector<std::uint64_t>& words) {
        hafnium::Spm& spm = *node.spm();
        const arch::VmId login = node.login_vm()->id();
        const arch::IpaAddr send = node.login_vm()->ipa_base + 0x1000;
        for (std::size_t i = 0; i < words.size(); ++i) {
            ASSERT_TRUE(spm.vm_write64(login, send + i * 8, words[i]));
        }
        ASSERT_TRUE(spm.hypercall(0, login, hafnium::Call::kMsgSend,
                                  {arch::kPrimaryVmId, words.size() * 8, 0, 0})
                        .ok());
    }
};

TEST_F(HostileChannel, GarbageFramesAreIgnored) {
    send_raw({0xdeadbeef, 0xfeedface, 0, 1, 2, 3});
    node.run_for(0.5);
    EXPECT_EQ(jobs->commands_processed(), 0u);
    // The channel still works afterwards.
    core::JobCommand ping;
    ping.op = core::JobOp::kPing;
    EXPECT_TRUE(jobs->request(ping, 3.0).has_value());
}

TEST_F(HostileChannel, ShortFrameIsIgnored) {
    send_raw({core::kJobMagic, 1});
    node.run_for(0.5);
    EXPECT_EQ(jobs->commands_processed(), 0u);
}

TEST_F(HostileChannel, OutOfRangeOpcodeIgnored) {
    send_raw({core::kJobMagic, 99, 0, 0, 0, 7});
    node.run_for(0.5);
    EXPECT_EQ(jobs->commands_processed(), 0u);
}

TEST_F(HostileChannel, ForgedMacRejected) {
    // A well-formed command frame sealed with the WRONG key (the attacker
    // does not know the boot-derived session key).
    core::JobCommand cmd;
    cmd.op = core::JobOp::kStopVm;
    cmd.vm = node.compute_vm()->id();
    cmd.tag = 1;
    const core::ChannelKey wrong =
        core::derive_channel_key(std::vector<std::uint8_t>(32, 0xee), "attacker");
    send_raw(core::seal(core::encode(cmd), wrong, 1));
    node.run_for(0.5);
    EXPECT_EQ(jobs->commands_processed(), 0u);
    EXPECT_GE(jobs->rejected_frames(), 1u);
}

TEST_F(HostileChannel, ReplayedFrameRejected) {
    // Capture a legitimate frame by re-sealing with the real key material
    // (derived from the public attestation log in this model), but reuse an
    // old counter: monotonicity rejects it.
    const core::ChannelKey key = core::derive_channel_key(
        node.attestation().accumulator(), "hpcsec:jobctl:cmd");
    core::JobCommand cmd;
    cmd.op = core::JobOp::kPing;
    cmd.tag = 42;
    send_raw(core::seal(core::encode(cmd), key, 1));  // counter 1: fresh
    node.run_for(0.5);
    const auto processed = jobs->commands_processed();
    EXPECT_EQ(processed, 1u);
    send_raw(core::seal(core::encode(cmd), key, 1));  // same counter: replay
    node.run_for(0.5);
    EXPECT_EQ(jobs->commands_processed(), processed);
    EXPECT_GE(jobs->rejected_frames(), 1u);
}

TEST_F(HostileChannel, SealUnsealRoundTrip) {
    const core::ChannelKey key =
        core::derive_channel_key(std::vector<std::uint8_t>(32, 1), "t");
    const std::vector<std::uint64_t> payload = {1, 2, 3};
    std::uint64_t ctr = 0;
    const auto out = core::unseal(core::seal(payload, key, 7), key, ctr);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, payload);
    EXPECT_EQ(ctr, 7u);
    // Counter must advance strictly.
    EXPECT_FALSE(core::unseal(core::seal(payload, key, 7), key, ctr).has_value());
    EXPECT_TRUE(core::unseal(core::seal(payload, key, 8), key, ctr).has_value());
}

TEST_F(HostileChannel, CommandForBogusVmGetsErrorNotCrash) {
    core::JobCommand cmd;
    cmd.op = core::JobOp::kMigrateVcpu;
    cmd.vm = 250;
    cmd.vcpu = 17;
    cmd.arg = 99;
    const auto reply = jobs->request(cmd, 3.0);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->status, -1);
}

// --- mailbox misuse ---------------------------------------------------------------

TEST(MailboxMisuse, SecondaryCannotSpoofSenderPrivileges) {
    Node node(Harness::default_config(SchedulerKind::kKittenPrimary, 25));
    node.boot();
    hafnium::Spm& spm = *node.spm();
    const arch::VmId compute = node.compute_vm()->id();
    // The compute VM may not inject interrupts or run VCPUs even if it
    // learns the ABI.
    EXPECT_EQ(spm.hypercall(0, compute, hafnium::Call::kInterruptInject,
                            {arch::kPrimaryVmId, 0, 40, 0})
                  .error,
              hafnium::HfError::kDenied);
    EXPECT_EQ(
        spm.hypercall(0, compute, hafnium::Call::kVcpuRun, {compute, 0, 0, 0}).error,
        hafnium::HfError::kDenied);
}

TEST(MailboxMisuse, UnconfiguredMailboxRejectsSend) {
    Node node(Harness::default_config(SchedulerKind::kKittenPrimary, 26));
    node.boot();
    EXPECT_EQ(node.spm()
                  ->hypercall(0, node.compute_vm()->id(), hafnium::Call::kMsgSend,
                              {arch::kPrimaryVmId, 8, 0, 0})
                  .error,
              hafnium::HfError::kInvalid);
    EXPECT_EQ(node.spm()
                  ->hypercall(0, node.compute_vm()->id(), hafnium::Call::kRxRelease, {})
                  .error,
              hafnium::HfError::kInvalid);
}

}  // namespace
}  // namespace hpcsec
