// Guest-internal scheduling: multiple threads per VCPU under the Kitten
// guest's run-to-completion queue.
#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/node.h"
#include "workloads/workload.h"

namespace hpcsec {
namespace {

class GuestJob : public arch::Runnable {
public:
    GuestJob(std::string name, double units) : name_(std::move(name)), remaining_(units) {
        prof_.cycles_per_unit = 1.0;
    }
    [[nodiscard]] std::string_view label() const override { return name_; }
    [[nodiscard]] double remaining_units() const override { return remaining_; }
    void advance(double u, sim::SimTime now) override {
        remaining_ = u >= remaining_ ? 0 : remaining_ - u;
        if (remaining_ == 0 && finish_time == 0) finish_time = now;
    }
    [[nodiscard]] const arch::WorkProfile& profile() const override { return prof_; }
    [[nodiscard]] arch::TranslationMode mode() const override {
        return arch::TranslationMode::kTwoStage;
    }

    std::string name_;
    arch::WorkProfile prof_{};
    double remaining_;
    sim::SimTime finish_time = 0;
};

struct GuestSched : ::testing::Test {
    core::Node node{core::Harness::default_config(
        core::SchedulerKind::kKittenPrimary, 31)};

    void SetUp() override { node.boot(); }

    void kick(int vcpu) {
        node.spm()->make_vcpu_ready(node.compute_vm()->vcpu(vcpu));
        node.primary_os()->on_vcpu_wake(node.compute_vm()->vcpu(vcpu));
    }
};

TEST_F(GuestSched, TwoThreadsRunToCompletionInOrder) {
    GuestJob a("a", 1'000'000), b("b", 1'000'000);
    node.compute_guest()->add_thread(0, &a);
    node.compute_guest()->add_thread(0, &b);
    EXPECT_EQ(node.compute_guest()->thread_count(0), 2u);
    kick(0);
    node.run_for(1.0);
    EXPECT_EQ(a.remaining_, 0.0);
    EXPECT_EQ(b.remaining_, 0.0);
    // Run-to-completion: a finished strictly before b started finishing.
    EXPECT_LT(a.finish_time, b.finish_time);
}

TEST_F(GuestSched, ManyThreadsAllComplete) {
    std::vector<std::unique_ptr<GuestJob>> jobs;
    for (int i = 0; i < 8; ++i) {
        jobs.push_back(std::make_unique<GuestJob>("j" + std::to_string(i), 200000));
        node.compute_guest()->add_thread(i % 4, jobs.back().get());
    }
    for (int v = 0; v < 4; ++v) kick(v);
    node.run_for(1.0);
    for (const auto& j : jobs) EXPECT_EQ(j->remaining_, 0.0) << j->name_;
}

TEST_F(GuestSched, VcpuBlocksWhenAllThreadsDone) {
    GuestJob a("a", 1000);
    node.compute_guest()->add_thread(2, &a);
    kick(2);
    node.run_for(0.5);
    EXPECT_EQ(a.remaining_, 0.0);
    EXPECT_EQ(node.compute_vm()->vcpu(2).state(), hafnium::VcpuState::kBlocked);
}

TEST_F(GuestSched, SetThreadReplacesQueue) {
    GuestJob a("a", 1e12), b("b", 1000);
    node.compute_guest()->add_thread(1, &a);
    node.compute_guest()->set_thread(1, &b);
    EXPECT_EQ(node.compute_guest()->thread_count(1), 1u);
    kick(1);
    node.run_for(0.2);
    EXPECT_EQ(b.remaining_, 0.0);
    EXPECT_EQ(a.remaining_, 1e12);  // never ran
}

TEST_F(GuestSched, ThreadSwitchCostCharged) {
    // Two threads on one vcpu: finishing the first charges a guest-level
    // context switch before the second starts.
    GuestJob a("a", 1000), b("b", 1000);
    node.compute_guest()->add_thread(3, &a);
    node.compute_guest()->add_thread(3, &b);
    kick(3);
    node.run_for(0.2);
    const auto& usage = node.platform().core(3).exec().usage();
    EXPECT_GT(usage.overhead, 0u);
    EXPECT_EQ(b.remaining_, 0.0);
}

}  // namespace
}  // namespace hpcsec
