// Hafnium SPM tests: manifest validation, boot, hypercall ABI, privilege
// enforcement, mailboxes, memory sharing, device assignment.
#include <gtest/gtest.h>

#include "arch/platform.h"
#include "hafnium/manifest.h"
#include "hafnium/spm.h"

namespace hpcsec::hafnium {
namespace {

VmSpec primary_spec(const std::string& name = "primary") {
    VmSpec s;
    s.name = name;
    s.role = VmRole::kPrimary;
    s.mem_bytes = 64ull << 20;
    s.vcpu_count = 4;
    s.image = {1, 2, 3};
    return s;
}

VmSpec secondary_spec(const std::string& name, std::uint64_t mem = 32ull << 20,
                      int vcpus = 4) {
    VmSpec s;
    s.name = name;
    s.role = VmRole::kSecondary;
    s.mem_bytes = mem;
    s.vcpu_count = vcpus;
    s.image = {4, 5, 6};
    return s;
}

VmSpec super_secondary_spec() {
    VmSpec s;
    s.name = "login";
    s.role = VmRole::kSuperSecondary;
    s.mem_bytes = 32ull << 20;
    s.vcpu_count = 1;
    s.image = {7, 8, 9};
    return s;
}

// --- Manifest -----------------------------------------------------------------

TEST(Manifest, ValidManifestPasses) {
    Manifest m;
    m.vms = {primary_spec(), secondary_spec("compute")};
    EXPECT_TRUE(m.validate().empty());
}

TEST(Manifest, RequiresExactlyOnePrimary) {
    Manifest none;
    none.vms = {secondary_spec("a")};
    EXPECT_FALSE(none.validate().empty());

    Manifest two;
    two.vms = {primary_spec("p1"), primary_spec("p2")};
    EXPECT_FALSE(two.validate().empty());
}

TEST(Manifest, AtMostOneSuperSecondary) {
    Manifest m;
    m.vms = {primary_spec(), super_secondary_spec(), super_secondary_spec()};
    auto problems = m.validate();
    bool found = false;
    for (const auto& p : problems) found |= p.find("super-secondary") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Manifest, SecondariesCannotOwnDevices) {
    Manifest m;
    VmSpec bad = secondary_spec("compute");
    bad.devices = {"uart0"};
    m.vms = {primary_spec(), bad};
    EXPECT_FALSE(m.validate().empty());
}

TEST(Manifest, RejectsDuplicateNamesAndBadSizes) {
    Manifest m;
    VmSpec dup = secondary_spec("compute");
    VmSpec unaligned = secondary_spec("compute");
    unaligned.mem_bytes = 12345;  // not page aligned
    VmSpec novcpu = secondary_spec("x");
    novcpu.vcpu_count = 0;
    m.vms = {primary_spec(), dup, unaligned, novcpu};
    EXPECT_GE(m.validate().size(), 3u);
}

TEST(Manifest, PrimaryMustBeNonSecure) {
    Manifest m;
    VmSpec p = primary_spec();
    p.world = arch::World::kSecure;
    m.vms = {p, secondary_spec("compute")};
    EXPECT_FALSE(m.validate().empty());
}

TEST(Manifest, DeviceTreeRoundTrip) {
    Manifest m;
    VmSpec ss = super_secondary_spec();
    ss.devices = {"uart0", "emac"};
    m.vms = {primary_spec(), ss, secondary_spec("compute", 32ull << 20, 2)};
    const arch::DtNode dt = m.to_devicetree();
    const Manifest back = Manifest::from_devicetree(dt);
    ASSERT_EQ(back.vms.size(), 3u);
    EXPECT_EQ(back.vms[0].role, VmRole::kPrimary);
    EXPECT_EQ(back.vms[1].name, "login");
    EXPECT_EQ(back.vms[1].devices, (std::vector<std::string>{"uart0", "emac"}));
    EXPECT_EQ(back.vms[2].vcpu_count, 2);
    EXPECT_EQ(back.vms[2].mem_bytes, 32ull << 20);
}

// --- SPM boot ------------------------------------------------------------------

struct SpmFixture : ::testing::Test {
    arch::Platform platform{arch::PlatformConfig::pine_a64()};

    std::unique_ptr<Spm> make_spm(bool with_super = false,
                                  IrqRoutingPolicy policy =
                                      IrqRoutingPolicy::kAllToPrimary) {
        Manifest m;
        m.vms.push_back(primary_spec());
        if (with_super) m.vms.push_back(super_secondary_spec());
        m.vms.push_back(secondary_spec("compute"));
        auto spm = std::make_unique<Spm>(platform, m, policy);
        spm->boot();
        return spm;
    }
};

TEST_F(SpmFixture, BootAssignsIdsInRoleOrder) {
    auto spm = make_spm(true);
    EXPECT_EQ(spm->vm_count(), 3);
    EXPECT_EQ(spm->primary_vm().id(), arch::kPrimaryVmId);
    EXPECT_EQ(spm->super_secondary()->id(), 2);  // "hardcoded VM ID" for the SS
    EXPECT_EQ(spm->find_vm("compute")->id(), 3);
}

TEST_F(SpmFixture, BootRejectsInvalidManifest) {
    Manifest m;  // no primary
    m.vms = {secondary_spec("compute")};
    Spm spm(platform, m);
    EXPECT_THROW(spm.boot(), std::runtime_error);
}

TEST_F(SpmFixture, BootPowersAllCores) {
    auto spm = make_spm();
    EXPECT_EQ(platform.monitor().powered_cores(), 4);
    for (int c = 0; c < 4; ++c) EXPECT_EQ(platform.core(c).el(), arch::El::kEl1);
}

TEST_F(SpmFixture, MeasurementsCoverEveryImage) {
    auto spm = make_spm(true);
    ASSERT_EQ(spm->measurements().size(), 3u);
    EXPECT_EQ(spm->measurements()[0].first, "primary");
    EXPECT_EQ(spm->measurements()[1].first, "login");
}

TEST_F(SpmFixture, ImageHashMismatchAbortsBoot) {
    Manifest m;
    m.vms = {primary_spec(), secondary_spec("compute")};
    m.vms[1].expected_hash = crypto::Sha256::hash("not the image");
    Spm spm(platform, m);
    EXPECT_THROW(spm.boot(), std::runtime_error);
}

TEST_F(SpmFixture, VmMemoryIsOwnedAndDisjoint) {
    auto spm = make_spm(true);
    for (int id = 1; id <= spm->vm_count(); ++id) {
        Vm& vm = spm->vm(static_cast<arch::VmId>(id));
        EXPECT_TRUE(platform.mem().owned_span(vm.mem_base, vm.mem_bytes(), vm.id()))
            << vm.name();
    }
}

TEST_F(SpmFixture, MmioGoesToPrimaryWithoutSuperSecondary) {
    auto spm = make_spm(false);
    EXPECT_FALSE(spm->devices_of(arch::kPrimaryVmId).empty());
    // Primary can translate the UART MMIO window.
    EXPECT_EQ(spm->vm_translate(arch::kPrimaryVmId, 0x01C2'8000).fault,
              arch::FaultKind::kNone);
}

TEST_F(SpmFixture, MmioGoesToSuperSecondaryWhenPresent) {
    auto spm = make_spm(true);
    EXPECT_TRUE(spm->devices_of(arch::kPrimaryVmId).empty());
    EXPECT_EQ(spm->devices_of(2).size(), platform.config().devices.size());
    EXPECT_EQ(spm->vm_translate(2, 0x01C2'8000).fault, arch::FaultKind::kNone);
    EXPECT_NE(spm->vm_translate(arch::kPrimaryVmId, 0x01C2'8000).fault,
              arch::FaultKind::kNone);
}

TEST_F(SpmFixture, SecondaryNeverSeesMmio) {
    auto spm = make_spm(true);
    const arch::VmId compute = spm->find_vm("compute")->id();
    // The secondary's view of IPA 0x01C28000 (the UART's PA) is its own RAM;
    // no stage-2 entry of a secondary may resolve to an MMIO physical range.
    const arch::WalkResult w = spm->vm_translate(compute, 0x01C2'8000);
    if (w.fault == arch::FaultKind::kNone) {
        EXPECT_TRUE(platform.mem().is_ram(w.out));
        EXPECT_FALSE(platform.mem().is_mmio(w.out));
    }
    // And IPAs beyond its RAM window do not translate at all.
    EXPECT_NE(
        spm->vm_translate(compute, spm->vm(compute).mem_bytes() + 0x1000).fault,
        arch::FaultKind::kNone);
}

TEST_F(SpmFixture, DefaultVcpuSpreadIsIncremental) {
    auto spm = make_spm();
    Vm& compute = *spm->find_vm("compute");
    for (int v = 0; v < compute.vcpu_count(); ++v) {
        EXPECT_EQ(compute.vcpu(v).assigned_core, v % platform.ncores());
    }
}

// --- Hypercalls ------------------------------------------------------------------

TEST_F(SpmFixture, VersionAndCounts) {
    auto spm = make_spm(true);
    EXPECT_EQ(spm->hypercall(0, 1, Call::kVersion).value, (1 << 16) | 1);
    EXPECT_EQ(spm->hypercall(0, 1, Call::kVmGetCount).value, 3);
    EXPECT_EQ(spm->hypercall(0, 1, Call::kVcpuGetCount, {3, 0, 0, 0}).value, 4);
    EXPECT_EQ(spm->hypercall(0, 1, Call::kVcpuGetCount, {9, 0, 0, 0}).error,
              HfError::kNotFound);
}

TEST_F(SpmFixture, VmGetInfoPacksRoleWorldVcpus) {
    auto spm = make_spm(true);
    const auto info = spm->hypercall(0, 1, Call::kVmGetInfo, {2, 0, 0, 0});
    ASSERT_TRUE(info.ok());
    EXPECT_EQ((info.value >> 32) & 0xff,
              static_cast<std::int64_t>(VmRole::kSuperSecondary));
    EXPECT_EQ(info.value & 0xffff, 1);
}

TEST_F(SpmFixture, VcpuRunDeniedForNonPrimary) {
    auto spm = make_spm(true);
    // The super-secondary must NOT be able to assume control over cores.
    const auto r = spm->hypercall(0, 2, Call::kVcpuRun, {3, 0, 0, 0});
    EXPECT_EQ(r.error, HfError::kDenied);
    EXPECT_EQ(spm->stats().denied_calls, 1u);
    // Nor can a plain secondary.
    EXPECT_EQ(spm->hypercall(0, 3, Call::kVcpuRun, {2, 0, 0, 0}).error,
              HfError::kDenied);
}

TEST_F(SpmFixture, VcpuRunRejectsPrimaryTargetAndBadIds) {
    auto spm = make_spm();
    EXPECT_EQ(spm->hypercall(0, 1, Call::kVcpuRun, {1, 0, 0, 0}).error,
              HfError::kInvalid);
    EXPECT_EQ(spm->hypercall(0, 1, Call::kVcpuRun, {7, 0, 0, 0}).error,
              HfError::kNotFound);
    EXPECT_EQ(spm->hypercall(0, 1, Call::kVcpuRun, {2, 99, 0, 0}).error,
              HfError::kInvalid);
}

TEST_F(SpmFixture, VcpuRunRetriesWhenNotReady) {
    auto spm = make_spm();
    // VCPU exists but is Off (no guest kernel attached it).
    EXPECT_EQ(spm->hypercall(0, 1, Call::kVcpuRun, {2, 0, 0, 0}).error,
              HfError::kRetry);
}

TEST_F(SpmFixture, InterruptInjectPrivilege) {
    auto spm = make_spm(true);
    // Secondary may not inject.
    EXPECT_EQ(spm->hypercall(0, 3, Call::kInterruptInject, {2, 0, 40, 0}).error,
              HfError::kDenied);
    // Primary may.
    EXPECT_TRUE(spm->hypercall(0, 1, Call::kInterruptInject, {3, 0, 40, 0}).ok());
    EXPECT_TRUE(spm->vm(3).vcpu(0).vgic.pending.contains(40));
}

TEST_F(SpmFixture, MailboxConfigureValidatesPages) {
    auto spm = make_spm();
    Vm& primary = spm->primary_vm();
    const arch::IpaAddr good = primary.ipa_base + 0x1000;
    EXPECT_TRUE(spm->hypercall(0, 1, Call::kVmConfigure, {good, good + 0x1000, 0, 0})
                    .ok());
    // An unmapped IPA is rejected.
    EXPECT_EQ(spm->hypercall(0, 1, Call::kVmConfigure,
                             {0xffff'0000'0000ull, good, 0, 0})
                  .error,
              HfError::kInvalid);
}

TEST_F(SpmFixture, MessageSendCopiesThroughStage2) {
    auto spm = make_spm();
    Vm& primary = spm->primary_vm();
    Vm& compute = *spm->find_vm("compute");
    const arch::IpaAddr psend = primary.ipa_base + 0x1000;
    const arch::IpaAddr precv = primary.ipa_base + 0x2000;
    ASSERT_TRUE(spm->hypercall(0, 1, Call::kVmConfigure, {psend, precv, 0, 0}).ok());
    ASSERT_TRUE(
        spm->hypercall(0, compute.id(), Call::kVmConfigure, {0x1000, 0x2000, 0, 0})
            .ok());

    ASSERT_TRUE(spm->vm_write64(1, psend, 0xabcdef));
    ASSERT_TRUE(spm->vm_write64(1, psend + 8, 0x123456));
    const auto r =
        spm->hypercall(0, 1, Call::kMsgSend, {compute.id(), 16, 0, 0});
    ASSERT_TRUE(r.ok());

    std::uint64_t w0 = 0, w1 = 0;
    EXPECT_TRUE(spm->vm_read64(compute.id(), 0x2000, w0));
    EXPECT_TRUE(spm->vm_read64(compute.id(), 0x2008, w1));
    EXPECT_EQ(w0, 0xabcdefu);
    EXPECT_EQ(w1, 0x123456u);
    EXPECT_TRUE(compute.mailbox.recv_full);
    EXPECT_EQ(compute.mailbox.recv_from, 1);
    // Message notification virq is pending on the receiver's vcpu0.
    EXPECT_TRUE(compute.vcpu(0).vgic.pending.contains(kMessageVirq));
}

TEST_F(SpmFixture, MessageSendBusyWhenRecvFull) {
    auto spm = make_spm();
    Vm& primary = spm->primary_vm();
    Vm& compute = *spm->find_vm("compute");
    const arch::IpaAddr base = primary.ipa_base;
    ASSERT_TRUE(
        spm->hypercall(0, 1, Call::kVmConfigure, {base + 0x1000, base + 0x2000, 0, 0})
            .ok());
    ASSERT_TRUE(
        spm->hypercall(0, compute.id(), Call::kVmConfigure, {0x1000, 0x2000, 0, 0})
            .ok());
    ASSERT_TRUE(spm->hypercall(0, 1, Call::kMsgSend, {compute.id(), 8, 0, 0}).ok());
    EXPECT_EQ(spm->hypercall(0, 1, Call::kMsgSend, {compute.id(), 8, 0, 0}).error,
              HfError::kBusy);
    // RX release clears it.
    ASSERT_TRUE(spm->hypercall(0, compute.id(), Call::kRxRelease, {}).ok());
    EXPECT_TRUE(spm->hypercall(0, 1, Call::kMsgSend, {compute.id(), 8, 0, 0}).ok());
}

TEST_F(SpmFixture, MessageSizeLimited) {
    auto spm = make_spm();
    Vm& primary = spm->primary_vm();
    const arch::IpaAddr base = primary.ipa_base;
    ASSERT_TRUE(
        spm->hypercall(0, 1, Call::kVmConfigure, {base + 0x1000, base + 0x2000, 0, 0})
            .ok());
    EXPECT_EQ(
        spm->hypercall(0, 1, Call::kMsgSend, {2, arch::kPageSize + 8, 0, 0}).error,
        HfError::kInvalid);
}

// --- Memory sharing ------------------------------------------------------------

TEST_F(SpmFixture, MemShareGrantsAndReclaims) {
    auto spm = make_spm();
    Vm& compute = *spm->find_vm("compute");
    const arch::IpaAddr own = 0x10000;
    const arch::IpaAddr borrower_ipa = 0x5000'0000;

    // compute shares 2 pages with the primary.
    ASSERT_TRUE(spm->vm_write64(compute.id(), own, 0x77));
    const auto share = spm->hypercall(0, compute.id(), Call::kMemShare,
                                      {1, own, 2, borrower_ipa});
    ASSERT_TRUE(share.ok());
    ASSERT_EQ(spm->grants().size(), 1u);

    std::uint64_t v = 0;
    EXPECT_TRUE(spm->vm_read64(1, borrower_ipa, v));
    EXPECT_EQ(v, 0x77u);
    // Writes through the share are visible to the owner.
    EXPECT_TRUE(spm->vm_write64(1, borrower_ipa + 8, 0x88));
    EXPECT_TRUE(spm->vm_read64(compute.id(), own + 8, v));
    EXPECT_EQ(v, 0x88u);

    // Reclaim revokes access.
    ASSERT_TRUE(
        spm->hypercall(0, compute.id(), Call::kMemReclaim, {1, own, 0, 0}).ok());
    EXPECT_FALSE(spm->vm_read64(1, borrower_ipa, v));
    EXPECT_TRUE(spm->grants().empty());
}

TEST_F(SpmFixture, MemShareRejectsUnownedRange) {
    auto spm = make_spm();
    Vm& compute = *spm->find_vm("compute");
    // IPA beyond the VM's memory doesn't translate.
    EXPECT_EQ(spm->hypercall(0, compute.id(), Call::kMemShare,
                             {1, compute.mem_bytes() + 0x1000, 1, 0x5000'0000})
                  .error,
              HfError::kInvalid);
}

TEST_F(SpmFixture, MemShareRejectsSelfAndBadTarget) {
    auto spm = make_spm();
    Vm& compute = *spm->find_vm("compute");
    EXPECT_EQ(spm->hypercall(0, compute.id(), Call::kMemShare,
                             {compute.id(), 0, 1, 0x5000'0000})
                  .error,
              HfError::kInvalid);
    EXPECT_EQ(
        spm->hypercall(0, compute.id(), Call::kMemShare, {9, 0, 1, 0x5000'0000})
            .error,
        HfError::kNotFound);
}

TEST_F(SpmFixture, MemLendRevokesOwnerAccessUntilReclaim) {
    auto spm = make_spm();
    Vm& compute = *spm->find_vm("compute");
    const arch::IpaAddr own = 0x8000;
    const arch::IpaAddr window = 0x6000'0000;
    ASSERT_TRUE(spm->vm_write64(compute.id(), own, 0xfeed));

    ASSERT_TRUE(spm->hypercall(0, compute.id(), Call::kMemLend, {1, own, 1, window})
                    .ok());
    // Borrower sees the data; the owner's access is gone.
    std::uint64_t v = 0;
    EXPECT_TRUE(spm->vm_read64(1, window, v));
    EXPECT_EQ(v, 0xfeedu);
    EXPECT_FALSE(spm->vm_read64(compute.id(), own, v));
    EXPECT_FALSE(spm->vm_write64(compute.id(), own, 1));
    // Pages around the lent one are unaffected.
    EXPECT_TRUE(spm->vm_read64(compute.id(), own + arch::kPageSize, v));

    // Reclaim: owner back, borrower out.
    ASSERT_TRUE(
        spm->hypercall(0, compute.id(), Call::kMemReclaim, {1, own, 0, 0}).ok());
    EXPECT_TRUE(spm->vm_read64(compute.id(), own, v));
    EXPECT_EQ(v, 0xfeedu);
    EXPECT_FALSE(spm->vm_read64(1, window, v));
}

TEST_F(SpmFixture, MemDonateTransfersOwnership) {
    auto spm = make_spm();
    Vm& compute = *spm->find_vm("compute");
    const arch::IpaAddr own = 0x20000;
    const arch::IpaAddr window = 0x6100'0000;
    ASSERT_TRUE(spm->vm_write64(compute.id(), own, 0xd07a7e));
    const arch::PhysAddr pa = spm->vm_translate(compute.id(), own).out;

    ASSERT_TRUE(
        spm->hypercall(0, compute.id(), Call::kMemDonate, {1, own, 2, window}).ok());
    // Frames are retagged to the new owner.
    EXPECT_TRUE(platform.mem().owned_span(pa, 2 * arch::kPageSize, 1));
    // The donor lost its translation; the recipient reads the data.
    std::uint64_t v = 0;
    EXPECT_FALSE(spm->vm_read64(compute.id(), own, v));
    EXPECT_TRUE(spm->vm_read64(1, window, v));
    EXPECT_EQ(v, 0xd07a7eu);
    // Donation is permanent: no grant is recorded to reclaim.
    EXPECT_EQ(spm->hypercall(0, compute.id(), Call::kMemReclaim, {1, own, 0, 0}).error,
              HfError::kNotFound);
}

TEST_F(SpmFixture, MemDonateAcrossWorldsDenied) {
    // A secure-world compute VM cannot donate secure frames to the
    // non-secure primary.
    arch::PlatformConfig pcfg = arch::PlatformConfig::pine_a64();
    pcfg.secure_ram_bytes = 128ull << 20;
    arch::Platform p2(pcfg);
    Manifest m;
    m.vms.push_back(primary_spec());
    VmSpec sec = secondary_spec("enclave");
    sec.world = arch::World::kSecure;
    m.vms.push_back(sec);
    Spm spm2(p2, m);
    spm2.boot();
    EXPECT_EQ(
        spm2.hypercall(0, 2, Call::kMemDonate, {1, 0x1000, 1, 0x6000'0000}).error,
        HfError::kDenied);
}

TEST_F(SpmFixture, ReclaimUnknownGrantFails) {
    auto spm = make_spm();
    EXPECT_EQ(spm->hypercall(0, 3, Call::kMemReclaim, {1, 0x4000, 0, 0}).error,
              HfError::kNotFound);
}

// --- vtimer hypercalls ------------------------------------------------------------

TEST_F(SpmFixture, VtimerSetAndCancelTrackState) {
    auto spm = make_spm();
    Vm& compute = *spm->find_vm("compute");
    ASSERT_TRUE(
        spm->hypercall(0, compute.id(), Call::kVtimerSet, {123456, 1, 0, 0}).ok());
    EXPECT_TRUE(compute.vcpu(1).vtimer_armed);
    EXPECT_EQ(compute.vcpu(1).vtimer_deadline, 123456u);
    ASSERT_TRUE(
        spm->hypercall(0, compute.id(), Call::kVtimerCancel, {0, 1, 0, 0}).ok());
    EXPECT_FALSE(compute.vcpu(1).vtimer_armed);
}

TEST_F(SpmFixture, InterruptEnableTracksVgicState) {
    auto spm = make_spm();
    Vm& compute = *spm->find_vm("compute");
    const auto virt_timer =
        static_cast<std::uint64_t>(spm->platform().isa_ops().irq.virt_timer);
    ASSERT_TRUE(spm->hypercall(0, compute.id(), Call::kInterruptEnable,
                               {virt_timer, 2, 0, 0})
                    .ok());
    EXPECT_TRUE(compute.vcpu(2).vgic.enabled.contains(static_cast<int>(virt_timer)));
}

}  // namespace
}  // namespace hpcsec::hafnium
