// Security-isolation property tests — the invariants that make the system
// "securely compartmentalized":
//   I1  no stage-2 translation of a VM resolves to a frame owned by another
//       VM (unless covered by an explicit share grant);
//   I2  cross-VM reads/writes outside grants always fail;
//   I3  non-secure VMs can never reach secure-world frames;
//   I4  revoking a grant closes the window completely;
//   I5  hypervisor frame ownership is never reachable from any VM.
// The whole suite is parameterized over (seed, ISA backend): the isolation
// properties must hold identically on the ARM and RISC-V machine models.
#include <gtest/gtest.h>

#include "arch/isa.h"
#include "arch/platform.h"
#include "hafnium/spm.h"
#include "sim/rng.h"

namespace hpcsec::hafnium {
namespace {

struct IsolationFixture
    : ::testing::TestWithParam<std::tuple<std::uint64_t, arch::Isa>> {
    arch::PlatformConfig pcfg = [this] {
        auto c = arch::PlatformConfig::pine_a64();
        c.secure_ram_bytes = 128ull << 20;
        c.isa = std::get<1>(GetParam());
        return c;
    }();
    arch::Platform platform{pcfg};
    std::unique_ptr<Spm> spm;

    [[nodiscard]] std::uint64_t seed() const { return std::get<0>(GetParam()); }

    void SetUp() override {
        Manifest m;
        VmSpec p;
        p.name = "primary";
        p.role = VmRole::kPrimary;
        p.mem_bytes = 64ull << 20;
        p.vcpu_count = 4;
        p.image = {1};
        m.vms.push_back(p);
        for (int i = 0; i < 3; ++i) {
            VmSpec s;
            s.name = "tenant" + std::to_string(i);
            s.role = VmRole::kSecondary;
            s.mem_bytes = 32ull << 20;
            s.vcpu_count = 2;
            s.image = {static_cast<std::uint8_t>(i)};
            // tenant2 lives in the TrustZone secure world.
            s.world = i == 2 ? arch::World::kSecure : arch::World::kNonSecure;
            m.vms.push_back(s);
        }
        spm = std::make_unique<Spm>(platform, m);
        spm->boot();
    }
};

TEST_P(IsolationFixture, I1_TranslationsStayWithinOwnership) {
    sim::Rng rng(seed());
    for (int vm_id = 1; vm_id <= spm->vm_count(); ++vm_id) {
        Vm& vm = spm->vm(static_cast<arch::VmId>(vm_id));
        for (int trial = 0; trial < 500; ++trial) {
            const arch::IpaAddr ipa =
                vm.ipa_base + rng.next_below(vm.mem_bytes());
            const arch::WalkResult w = vm.stage2().walk(ipa);
            ASSERT_EQ(w.fault, arch::FaultKind::kNone);
            const auto owner = platform.mem().owner_of(w.out);
            ASSERT_TRUE(owner.has_value());
            EXPECT_EQ(owner->vm, vm.id())
                << vm.name() << " reached a frame owned by VM " << owner->vm;
        }
    }
}

TEST_P(IsolationFixture, I2_RandomCrossVmProbesAllFail) {
    sim::Rng rng(seed() ^ 0xabcdef);
    // Probe each tenant's stage-2 with IPAs pointing at other VMs' PAs —
    // none may translate (their stage-2 simply has no such mappings beyond
    // their own window).
    for (int attacker = 2; attacker <= spm->vm_count(); ++attacker) {
        Vm& a = spm->vm(static_cast<arch::VmId>(attacker));
        for (int victim = 1; victim <= spm->vm_count(); ++victim) {
            if (victim == attacker) continue;
            Vm& v = spm->vm(static_cast<arch::VmId>(victim));
            for (int trial = 0; trial < 100; ++trial) {
                // Attacker guesses IPAs equal to the victim's PAs (the
                // strongest guess it could make).
                const arch::IpaAddr probe = v.mem_base + rng.next_below(v.mem_bytes());
                std::uint64_t out = 0;
                if (spm->vm_read64(a.id(), probe, out)) {
                    // Translation succeeded only if the probe happens to fall
                    // inside the attacker's own window — verify it resolved
                    // to the attacker's own frames, not the victim's.
                    const arch::WalkResult w = a.stage2().walk(probe);
                    EXPECT_TRUE(
                        platform.mem().owned_span(w.out, 8, a.id()))
                        << "cross-VM leak from " << v.name() << " to " << a.name();
                }
            }
        }
    }
}

TEST_P(IsolationFixture, I3_NonSecureCannotTouchSecureWorld) {
    sim::Rng rng(seed() ^ 0x5ec);
    Vm& secure_vm = *spm->find_vm("tenant2");
    ASSERT_EQ(secure_vm.world(), arch::World::kSecure);
    ASSERT_EQ(platform.mem().world_of(secure_vm.mem_base), arch::World::kSecure);
    // The memory system itself rejects NS masters on those frames.
    for (int trial = 0; trial < 200; ++trial) {
        const arch::PhysAddr pa =
            secure_vm.mem_base + (rng.next_below(secure_vm.mem_bytes()) & ~7ull);
        EXPECT_EQ(platform.mem().check_physical_access(pa, arch::World::kNonSecure),
                  arch::FaultKind::kSecurity);
    }
    // And the secure VM itself can use its memory.
    EXPECT_TRUE(spm->vm_write64(secure_vm.id(), 0x1000, 0x5ecull));
    std::uint64_t v = 0;
    EXPECT_TRUE(spm->vm_read64(secure_vm.id(), 0x1000, v));
    EXPECT_EQ(v, 0x5ecull);
}

TEST_P(IsolationFixture, I4_GrantWindowOpensAndClosesExactly) {
    sim::Rng rng(seed() ^ 0x97a7);
    Vm& t0 = *spm->find_vm("tenant0");
    Vm& t1 = *spm->find_vm("tenant1");
    const arch::IpaAddr own = (rng.next_below(1024)) * arch::kPageSize;
    const arch::IpaAddr window = 0x7000'0000;
    const std::uint64_t pages = 1 + rng.next_below(4);

    ASSERT_TRUE(spm->hypercall(0, t0.id(), Call::kMemShare,
                               {t1.id(), own, pages, window})
                    .ok());
    std::uint64_t v = 0;
    // Inside the grant: accessible.
    EXPECT_TRUE(spm->vm_read64(t1.id(), window, v));
    EXPECT_TRUE(spm->vm_read64(t1.id(), window + (pages - 1) * arch::kPageSize, v));
    // One page past the grant: not accessible.
    EXPECT_FALSE(spm->vm_read64(t1.id(), window + pages * arch::kPageSize, v));
    // Revoke: the whole window closes.
    ASSERT_TRUE(
        spm->hypercall(0, t0.id(), Call::kMemReclaim, {t1.id(), own, 0, 0}).ok());
    EXPECT_FALSE(spm->vm_read64(t1.id(), window, v));
}

TEST_P(IsolationFixture, I5_PageTableFramesNotGuestReachable) {
    // Stage-2 table nodes are hypervisor state; confirm no VM translation
    // resolves into frames owned by the hypervisor (owner id 0 is never a
    // VM id, so I1 already covers it — this asserts the ownership tag).
    for (int vm_id = 1; vm_id <= spm->vm_count(); ++vm_id) {
        Vm& vm = spm->vm(static_cast<arch::VmId>(vm_id));
        const arch::WalkResult w = vm.stage2().walk(vm.ipa_base);
        ASSERT_EQ(w.fault, arch::FaultKind::kNone);
        const auto owner = platform.mem().owner_of(w.out);
        ASSERT_TRUE(owner.has_value());
        EXPECT_NE(owner->vm, arch::kHypervisorId);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, IsolationFixture,
    ::testing::Combine(::testing::Values<std::uint64_t>(11, 22, 33, 44, 55),
                       ::testing::Values(arch::Isa::kArm, arch::Isa::kRiscv)),
    [](const ::testing::TestParamInfo<IsolationFixture::ParamType>& info) {
        return arch::to_string(std::get<1>(info.param)) + "_seed" +
               std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace hpcsec::hafnium
