// Kitten LWK tests: buddy allocator, aspaces, native scheduling behaviour,
// primary-VM personality mechanics, and the guest personality.
#include <gtest/gtest.h>

#include "arch/platform.h"
#include "hafnium/spm.h"
#include "kitten/aspace.h"
#include "kitten/buddy.h"
#include "kitten/guest.h"
#include "kitten/kitten.h"
#include "sim/rng.h"
#include "workloads/workload.h"

namespace hpcsec::kitten {
namespace {

// --- BuddyAllocator -----------------------------------------------------------

TEST(Buddy, AllocatesAndFrees) {
    BuddyAllocator b(1 << 20, 4096);
    const auto a = b.alloc(4096);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(b.allocated_bytes(), 4096u);
    b.free(*a);
    EXPECT_EQ(b.allocated_bytes(), 0u);
    EXPECT_EQ(b.largest_free_block(), 1u << 20);
}

TEST(Buddy, RoundsUpToPowerOfTwo) {
    BuddyAllocator b(1 << 20, 4096);
    const auto a = b.alloc(5000);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(b.allocated_bytes(), 8192u);
    b.free(*a);
}

TEST(Buddy, SplitsAndCoalesces) {
    BuddyAllocator b(1 << 16, 4096);  // 16 min blocks
    std::vector<std::uint64_t> offs;
    for (int i = 0; i < 16; ++i) {
        const auto a = b.alloc(4096);
        ASSERT_TRUE(a.has_value());
        offs.push_back(*a);
    }
    EXPECT_FALSE(b.alloc(4096).has_value());  // full
    for (const auto o : offs) b.free(o);
    EXPECT_EQ(b.largest_free_block(), 1u << 16);  // fully coalesced
    EXPECT_EQ(b.fragments(), 1u);
}

TEST(Buddy, BuddyAddressesAreAligned) {
    BuddyAllocator b(1 << 20, 4096);
    const auto big = b.alloc(64 * 1024);
    ASSERT_TRUE(big.has_value());
    EXPECT_EQ(*big % (64 * 1024), 0u);
}

TEST(Buddy, DoubleFreeThrows) {
    BuddyAllocator b(1 << 16, 4096);
    const auto a = b.alloc(4096);
    b.free(*a);
    EXPECT_THROW(b.free(*a), std::logic_error);
}

TEST(Buddy, OversizeAllocFails) {
    BuddyAllocator b(1 << 16, 4096);
    EXPECT_FALSE(b.alloc((1 << 16) + 1).has_value());
    EXPECT_TRUE(b.alloc(1 << 16).has_value());
}

TEST(Buddy, RejectsNonPowerOfTwoGeometry) {
    EXPECT_THROW(BuddyAllocator(3000, 100), std::invalid_argument);
    EXPECT_THROW(BuddyAllocator(1 << 10, 1 << 12), std::invalid_argument);
}

TEST(Buddy, RandomizedAllocFreeConservesBytes) {
    BuddyAllocator b(1 << 20, 4096);
    sim::Rng rng(77);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> live;  // offset,size
    for (int step = 0; step < 2000; ++step) {
        if (live.empty() || rng.next_double() < 0.55) {
            const std::uint64_t want = 4096ull << rng.next_below(5);
            if (const auto a = b.alloc(want)) {
                // No overlap with any live allocation.
                for (const auto& [off, sz] : live) {
                    EXPECT_TRUE(*a + want <= off || off + sz <= *a);
                }
                live.emplace_back(*a, want);
            }
        } else {
            const std::size_t idx = rng.next_below(live.size());
            b.free(live[idx].first);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
    }
    std::uint64_t expect = 0;
    for (const auto& [off, sz] : live) expect += sz;
    EXPECT_EQ(b.allocated_bytes(), expect);
}

// --- Aspace -----------------------------------------------------------------------

TEST(Aspace, AddAndWalkRegion) {
    Aspace as("app");
    ASSERT_TRUE(as.add_region({"text", 0x40'0000, 0x2000, 0x8000'0000, arch::kPermRX}));
    const arch::WalkResult w = as.walk(0x40'1000);
    EXPECT_EQ(w.fault, arch::FaultKind::kNone);
    EXPECT_EQ(w.out, 0x8000'1000u);
    EXPECT_EQ(w.perms, arch::kPermRX);
}

TEST(Aspace, RejectsOverlap) {
    Aspace as("app");
    ASSERT_TRUE(as.add_region({"a", 0x1000, 0x3000, 0x8000'0000, arch::kPermRW}));
    EXPECT_FALSE(as.add_region({"b", 0x2000, 0x2000, 0x9000'0000, arch::kPermRW}));
    EXPECT_EQ(as.regions().size(), 1u);
}

TEST(Aspace, RejectsUnaligned) {
    Aspace as("app");
    EXPECT_FALSE(as.add_region({"a", 0x1001, 0x1000, 0x8000'0000, arch::kPermRW}));
}

TEST(Aspace, RemoveRegionUnmaps) {
    Aspace as("app");
    ASSERT_TRUE(as.add_region({"a", 0x1000, 0x1000, 0x8000'0000, arch::kPermRW}));
    ASSERT_TRUE(as.remove_region(0x1000));
    EXPECT_EQ(as.walk(0x1000).fault, arch::FaultKind::kTranslation);
    EXPECT_FALSE(as.remove_region(0x1000));
}

TEST(Aspace, IdmapConvenience) {
    Aspace as("kernel");
    ASSERT_TRUE(as.add_idmap("idmap", 0x4000'0000, 1ull << 20, arch::kPermRWX));
    EXPECT_EQ(as.walk(0x4008'0000).out, 0x4008'0000u);
    EXPECT_EQ(as.find_region(0x4008'0000)->name, "idmap");
}

// --- Native Kitten ------------------------------------------------------------------

class CountedWork : public arch::Runnable {
public:
    explicit CountedWork(double units) : remaining_(units) {
        prof_.cycles_per_unit = 1.0;  // one unit == one cycle
    }
    [[nodiscard]] std::string_view label() const override { return "counted"; }
    [[nodiscard]] double remaining_units() const override { return remaining_; }
    void advance(double u, sim::SimTime) override {
        remaining_ = u >= remaining_ ? 0 : remaining_ - u;
    }
    [[nodiscard]] const arch::WorkProfile& profile() const override { return prof_; }
    [[nodiscard]] arch::TranslationMode mode() const override {
        return arch::TranslationMode::kNative;
    }
    arch::WorkProfile prof_{};
    double remaining_;
};

struct NativeKitten : ::testing::Test {
    arch::Platform platform{arch::PlatformConfig::pine_a64()};
    KittenKernel kernel{platform, KittenConfig{}};
};

TEST_F(NativeKitten, BootPowersCoresAndTicks) {
    kernel.boot();
    EXPECT_TRUE(kernel.booted());
    EXPECT_EQ(platform.monitor().powered_cores(), 4);
    platform.engine().run_until(platform.engine().clock().from_seconds(1.0));
    // 10 Hz x 4 cores x 1 s, first tick phase-shifted.
    EXPECT_NEAR(static_cast<double>(kernel.stats().ticks), 40.0, 8.0);
}

TEST_F(NativeKitten, RunsAppThreadToCompletion) {
    kernel.boot();
    CountedWork w(1'000'000);
    kernel.add_app_thread(1, &w, "app");
    platform.engine().run_until(platform.engine().clock().from_seconds(0.5));
    EXPECT_EQ(w.remaining_, 0.0);
}

TEST_F(NativeKitten, RoundRobinSharesOneCore) {
    kernel.boot();
    // Two long threads pinned to core 0: RR at tick granularity. (1e12
    // units is hours of simulated work but still has sub-unit float
    // resolution for progress accounting.)
    CountedWork a(1e12), b(1e12);
    KThread& ta = kernel.add_app_thread(0, &a, "a");
    KThread& tb = kernel.add_app_thread(0, &b, "b");
    platform.engine().run_until(platform.engine().clock().from_seconds(1.0));
    EXPECT_GT(ta.dispatches, 2u);
    EXPECT_GT(tb.dispatches, 2u);
    // Both made comparable progress.
    const double pa = 1e12 - a.remaining_;
    const double pb = 1e12 - b.remaining_;
    EXPECT_NEAR(pa / (pa + pb), 0.5, 0.15);
}

TEST_F(NativeKitten, BlockAndWake) {
    kernel.boot();
    CountedWork w(1e9);
    KThread& t = kernel.add_app_thread(2, &w, "app");
    kernel.block(t);
    const double before = w.remaining_;
    // kernel.block only marks state; preempt what's running.
    platform.core(2).exec().preempt();
    platform.engine().run_until(platform.engine().clock().from_millis(100));
    EXPECT_EQ(w.remaining_, before);
    kernel.wake(t);
    platform.engine().run_until(platform.engine().clock().from_millis(200));
    EXPECT_LT(w.remaining_, before);
}

TEST_F(NativeKitten, ExitedThreadNeverRunsAgain) {
    kernel.boot();
    CountedWork w(1e12);
    KThread& t = kernel.add_app_thread(3, &w, "app");
    platform.engine().run_until(platform.engine().clock().from_millis(10));
    platform.core(3).exec().preempt();
    kernel.exit_thread(t);
    const double left = w.remaining_;
    platform.engine().run_until(platform.engine().clock().from_millis(300));
    EXPECT_EQ(w.remaining_, left);
    EXPECT_EQ(t.state, KThread::State::kExited);
}

TEST_F(NativeKitten, FindThreadByName) {
    kernel.boot();
    CountedWork w(100);
    kernel.add_app_thread(0, &w, "needle");
    EXPECT_NE(kernel.find_thread("needle"), nullptr);
    EXPECT_EQ(kernel.find_thread("missing"), nullptr);
}

TEST_F(NativeKitten, BootBuildsKernelIdmap) {
    kernel.boot();
    const Aspace& kas = kernel.kernel_aspace();
    EXPECT_EQ(kas.regions().size(), 2u);
    // Identity translation over DRAM.
    const arch::VirtAddr probe = platform.config().ram_base + 0x1234000;
    EXPECT_EQ(kas.walk(probe).out, probe);
    // The heap region is RW (not executable) at the top of the window.
    const arch::VirtAddr heap_end =
        platform.config().ram_base + platform.config().ram_bytes - arch::kPageSize;
    EXPECT_EQ(kas.walk(heap_end).perms, arch::kPermRW);
    EXPECT_EQ(kas.find_region(heap_end)->name, "kmem-heap");
}

TEST_F(NativeKitten, TicklessConfigProducesNoTicks) {
    arch::Platform p2(arch::PlatformConfig::pine_a64());
    KittenConfig cfg;
    cfg.tick_enabled = false;
    KittenKernel k2(p2, cfg);
    k2.boot();
    p2.engine().run_until(p2.engine().clock().from_seconds(1.0));
    EXPECT_EQ(k2.stats().ticks, 0u);
}

// --- Kitten as the primary VM ---------------------------------------------------

struct PrimaryKitten : ::testing::Test {
    arch::Platform platform{arch::PlatformConfig::pine_a64()};
    std::unique_ptr<hafnium::Spm> spm;
    std::unique_ptr<KittenKernel> kernel;
    std::unique_ptr<KittenGuestOs> guest;

    void SetUp() override {
        hafnium::Manifest m;
        hafnium::VmSpec p;
        p.name = "kitten-primary";
        p.role = hafnium::VmRole::kPrimary;
        p.mem_bytes = 64ull << 20;
        p.vcpu_count = 4;
        p.image = {1};
        hafnium::VmSpec s;
        s.name = "compute";
        s.role = hafnium::VmRole::kSecondary;
        s.mem_bytes = 64ull << 20;
        s.vcpu_count = 4;
        s.image = {2};
        m.vms = {p, s};
        spm = std::make_unique<hafnium::Spm>(platform, m);
        kernel = std::make_unique<KittenKernel>(platform, *spm, KittenConfig{});
        spm->boot();
        kernel->boot();
        guest = std::make_unique<KittenGuestOs>(*spm, *spm->find_vm("compute"));
    }
};

TEST_F(PrimaryKitten, LaunchVmCreatesVcpuProxies) {
    kernel->launch_vm(2);
    int proxies = 0;
    for (const auto& t : kernel->threads()) {
        proxies += t->kind == KThread::Kind::kVcpuProxy ? 1 : 0;
    }
    EXPECT_EQ(proxies, 4);
    EXPECT_NE(kernel->find_thread("compute-vcpu0"), nullptr);
}

TEST_F(PrimaryKitten, GuestWorkRunsThroughVcpuRun) {
    wl::WorkloadSpec spec;
    spec.name = "w";
    spec.nthreads = 4;
    spec.supersteps = 2;
    spec.units_per_thread_step = 100000;
    spec.profile.cycles_per_unit = 10;
    wl::ParallelWorkload w(spec);
    w.set_mode(arch::TranslationMode::kTwoStage);
    for (int i = 0; i < 4; ++i) guest->set_thread(i, &w.thread(i));
    guest->start();
    w.on_release = [&] { guest->wake_runnable_vcpus(); };
    kernel->launch_vm(2);
    platform.engine().run_until(platform.engine().clock().from_seconds(1.0));
    EXPECT_TRUE(w.finished());
    EXPECT_GT(spm->stats().world_switches, 0u);
    EXPECT_GT(spm->vm(2).vcpu(0).runs, 0u);
}

TEST_F(PrimaryKitten, GuestTicksArriveViaVirtualTimer) {
    wl::ParallelWorkload w(wl::spinner_spec(4));
    w.set_mode(arch::TranslationMode::kTwoStage);
    for (int i = 0; i < 4; ++i) guest->set_thread(i, &w.thread(i));
    guest->start();
    kernel->launch_vm(2);
    platform.engine().run_until(platform.engine().clock().from_seconds(1.0));
    // Guest 10 Hz vtimer on 4 VCPUs for ~1s.
    EXPECT_NEAR(static_cast<double>(guest->stats().ticks), 40.0, 10.0);
    EXPECT_GT(spm->stats().vtimer_fires, 0u);
}

TEST_F(PrimaryKitten, MigrateVcpuMovesProxy) {
    kernel->launch_vm(2);
    hafnium::Vcpu& vcpu = spm->vm(2).vcpu(1);
    EXPECT_EQ(vcpu.assigned_core, 1);
    EXPECT_TRUE(kernel->migrate_vcpu(2, 1, 3));
    EXPECT_EQ(vcpu.assigned_core, 3);
    EXPECT_EQ(kernel->find_thread("compute-vcpu1")->core, 3);
    EXPECT_FALSE(kernel->migrate_vcpu(2, 1, 9));
}

TEST_F(PrimaryKitten, StopVmExitsProxies) {
    kernel->launch_vm(2);
    kernel->stop_vm(2);
    for (const auto& t : kernel->threads()) {
        if (t->kind == KThread::Kind::kVcpuProxy) {
            EXPECT_EQ(t->state, KThread::State::kExited);
        }
    }
}

TEST_F(PrimaryKitten, PrimaryForwardsDeviceIrqsToSuperSecondary) {
    // No super-secondary in this fixture: forwarding is a no-op but the
    // interrupt must still be consumed without crashing.
    platform.irqc().enable_irq(32);
    platform.irqc().set_external_target(32, 0);
    platform.irqc().raise_external(32);
    platform.engine().run_until(platform.engine().clock().from_millis(1));
    EXPECT_EQ(kernel->stats().forwarded_irqs, 0u);
}

TEST_F(PrimaryKitten, BootRequiresBootedSpm) {
    arch::Platform p2(arch::PlatformConfig::pine_a64());
    hafnium::Manifest m;
    hafnium::VmSpec p;
    p.name = "p";
    p.role = hafnium::VmRole::kPrimary;
    p.mem_bytes = 16ull << 20;
    p.vcpu_count = 4;
    m.vms = {p};
    hafnium::Spm s2(p2, m);
    KittenKernel k2(p2, s2, KittenConfig{});
    EXPECT_THROW(k2.boot(), std::logic_error);
}

}  // namespace
}  // namespace hpcsec::kitten
