// Linux FWK model tests: CFS runqueue mechanics and the noisy primary-VM
// behaviour that motivates the paper.
#include <gtest/gtest.h>

#include "arch/platform.h"
#include "hafnium/spm.h"
#include "linux_fwk/cfs.h"
#include "linux_fwk/guest.h"
#include "kitten/guest.h"
#include "kitten/kitten.h"
#include "linux_fwk/linux.h"
#include "workloads/workload.h"

namespace hpcsec::linux_fwk {
namespace {

// --- CfsRunqueue -----------------------------------------------------------------

SchedEntity make_entity(const std::string& name, double vruntime = 0.0,
                        int weight = kNiceZeroWeight) {
    SchedEntity se;
    se.name = name;
    se.vruntime = vruntime;
    se.weight = weight;
    return se;
}

TEST(Cfs, PicksLeftmostByVruntime) {
    CfsRunqueue rq;
    SchedEntity a = make_entity("a", 100), b = make_entity("b", 50),
                c = make_entity("c", 75);
    rq.enqueue(a, false);
    rq.enqueue(b, false);
    rq.enqueue(c, false);
    EXPECT_EQ(rq.pick_next(), &b);
    EXPECT_EQ(rq.pick_next(), &c);
    EXPECT_EQ(rq.pick_next(), &a);
    EXPECT_EQ(rq.pick_next(), nullptr);
}

TEST(Cfs, UpdateCurrAdvancesVruntimeByWeight) {
    CfsRunqueue rq;
    SchedEntity heavy = make_entity("h", 0, 2048);
    rq.update_curr(heavy, 1000.0);
    EXPECT_DOUBLE_EQ(heavy.vruntime, 500.0);  // half speed for double weight
    SchedEntity normal = make_entity("n", 0, 1024);
    rq.update_curr(normal, 1000.0);
    EXPECT_DOUBLE_EQ(normal.vruntime, 1000.0);
}

TEST(Cfs, SleeperCreditOnWakeup) {
    CfsRunqueue rq;
    SchedEntity runner = make_entity("runner");
    rq.enqueue(runner, false);
    (void)rq.pick_next();
    rq.update_curr(runner, 50'000'000);  // runner accumulated a lot
    rq.put_prev(runner);
    EXPECT_GT(rq.min_vruntime(), 0.0);

    SchedEntity sleeper = make_entity("sleeper", 0.0);
    rq.enqueue(sleeper, /*wakeup=*/true);
    // Sleeper placed near (slightly behind) min_vruntime, not at zero or at
    // the runner's huge value.
    EXPECT_GE(sleeper.vruntime, 0.0);
    EXPECT_EQ(rq.pick_next(), &sleeper);
}

TEST(Cfs, ShouldPreemptUsesWakeupGranularity) {
    CfsRunqueue::Tunables tun;
    CfsRunqueue rq(tun);
    SchedEntity curr = make_entity("curr", 10'000'000);
    SchedEntity cand = make_entity("cand", 10'000'000 - tun.wakeup_granularity_cycles / 2);
    rq.enqueue(cand, false);
    EXPECT_FALSE(rq.should_preempt(curr));  // within granularity
    rq.dequeue(cand);
    cand.vruntime = 10'000'000 - 2 * tun.wakeup_granularity_cycles;
    rq.enqueue(cand, false);
    EXPECT_TRUE(rq.should_preempt(curr));
}

TEST(Cfs, DequeueRemoves) {
    CfsRunqueue rq;
    SchedEntity a = make_entity("a", 1);
    rq.enqueue(a, false);
    rq.dequeue(a);
    EXPECT_EQ(rq.pick_next(), nullptr);
    EXPECT_EQ(rq.queued(), 0u);
}

TEST(Cfs, DeterministicTiebreakOnEqualVruntime) {
    CfsRunqueue rq;
    SchedEntity a = make_entity("a", 7), b = make_entity("b", 7);
    rq.enqueue(b, false);
    rq.enqueue(a, false);
    EXPECT_EQ(rq.pick_next(), &a);  // name order
}

// --- LinuxKernel as primary --------------------------------------------------------

struct LinuxPrimary : ::testing::Test {
    arch::Platform platform{arch::PlatformConfig::pine_a64(), 99};
    std::unique_ptr<hafnium::Spm> spm;
    std::unique_ptr<LinuxKernel> kernel;
    std::unique_ptr<LinuxGuestOs> login_guest;  // reused as a plain guest here

    void SetUp() override {
        hafnium::Manifest m;
        hafnium::VmSpec p;
        p.name = "linux-primary";
        p.role = hafnium::VmRole::kPrimary;
        p.mem_bytes = 64ull << 20;
        p.vcpu_count = 4;
        p.image = {1};
        hafnium::VmSpec s;
        s.name = "compute";
        s.role = hafnium::VmRole::kSecondary;
        s.mem_bytes = 64ull << 20;
        s.vcpu_count = 4;
        s.image = {2};
        m.vms = {p, s};
        spm = std::make_unique<hafnium::Spm>(platform, m);
        kernel = std::make_unique<LinuxKernel>(platform, *spm, LinuxConfig{});
        spm->boot();
        kernel->boot();
    }

    double run_seconds(double s) {
        const auto t = platform.engine().clock().from_seconds(s);
        platform.engine().run_until(platform.engine().now() + t);
        return s;
    }
};

TEST_F(LinuxPrimary, TicksAt250HzPerCore) {
    run_seconds(1.0);
    // 4 cores x 250 Hz.
    EXPECT_NEAR(static_cast<double>(kernel->stats().ticks), 1000.0, 60.0);
}

TEST_F(LinuxPrimary, BackgroundNoiseHappens) {
    run_seconds(2.0);
    EXPECT_GT(kernel->stats().kworker_wakes, 0u);
    EXPECT_GT(kernel->stats().softirqs, 0u);
    EXPECT_GT(kernel->stats().noise_cycles, 0.0);
}

TEST_F(LinuxPrimary, NoiseCanBeDisabled) {
    arch::Platform p2(arch::PlatformConfig::pine_a64(), 7);
    hafnium::Manifest m;
    hafnium::VmSpec p;
    p.name = "linux-primary";
    p.role = hafnium::VmRole::kPrimary;
    p.mem_bytes = 32ull << 20;
    p.vcpu_count = 4;
    m.vms = {p};
    hafnium::Spm s2(p2, m);
    LinuxConfig cfg;
    cfg.noise_enabled = false;
    LinuxKernel k2(p2, s2, cfg);
    s2.boot();
    k2.boot();
    p2.engine().run_until(p2.engine().clock().from_seconds(1.0));
    EXPECT_EQ(k2.stats().kworker_wakes, 0u);
    EXPECT_EQ(k2.stats().softirqs, 0u);
}

TEST_F(LinuxPrimary, GuestMakesProgressDespiteNoise) {
    hpcsec::kitten::KittenGuestOs guest(*spm, *spm->find_vm("compute"));
    wl::WorkloadSpec spec;
    spec.name = "w";
    spec.nthreads = 4;
    spec.supersteps = 3;
    spec.units_per_thread_step = 200000;
    spec.profile.cycles_per_unit = 10;
    wl::ParallelWorkload w(spec);
    w.set_mode(arch::TranslationMode::kTwoStage);
    for (int i = 0; i < 4; ++i) guest.set_thread(i, &w.thread(i));
    guest.start();
    w.on_release = [&] { guest.wake_runnable_vcpus(); };
    kernel->launch_vm(2);
    run_seconds(2.0);
    EXPECT_TRUE(w.finished());
}

TEST_F(LinuxPrimary, VcpuPreemptedByTicksFrequently) {
    hpcsec::kitten::KittenGuestOs guest(*spm, *spm->find_vm("compute"));
    wl::ParallelWorkload w(wl::spinner_spec(4));
    w.set_mode(arch::TranslationMode::kTwoStage);
    for (int i = 0; i < 4; ++i) guest.set_thread(i, &w.thread(i));
    guest.start();
    kernel->launch_vm(2);
    run_seconds(1.0);
    // Each of the 4 VCPUs is preempted by ~250 ticks/s.
    std::uint64_t preemptions = 0;
    for (int v = 0; v < 4; ++v) preemptions += spm->vm(2).vcpu(v).preemptions;
    EXPECT_GT(preemptions, 800u);
    EXPECT_GT(spm->stats().exits_preempted, 800u);
}

TEST_F(LinuxPrimary, StopVmHaltsScheduling) {
    hpcsec::kitten::KittenGuestOs guest(*spm, *spm->find_vm("compute"));
    wl::ParallelWorkload w(wl::spinner_spec(4));
    w.set_mode(arch::TranslationMode::kTwoStage);
    for (int i = 0; i < 4; ++i) guest.set_thread(i, &w.thread(i));
    guest.start();
    kernel->launch_vm(2);
    run_seconds(0.2);
    const std::uint64_t runs_before = spm->vm(2).vcpu(0).runs;
    EXPECT_GT(runs_before, 0u);
    // Preempt current guests, then stop the VM.
    for (int c = 0; c < 4; ++c) platform.core(c).exec().preempt();
    kernel->stop_vm(2);
    run_seconds(0.5);
    EXPECT_LE(spm->vm(2).vcpu(0).runs, runs_before + 1);
}

TEST_F(LinuxPrimary, AddTaskRunsUnderCfs) {
    BurstWork burst("job", arch::TranslationMode::kTwoStage);
    burst.refill(1'000'000);
    SchedEntity& se = kernel->add_task(1, &burst, "user-job");
    kernel->wake_entity(se);
    run_seconds(0.5);
    EXPECT_EQ(burst.remaining_units(), 0.0);
    EXPECT_GT(se.dispatches, 0u);
}

// --- LinuxGuestOs (super-secondary personality) ------------------------------------

TEST(LinuxGuest, DeviceIrqDeliveredToLoginVm) {
    arch::Platform platform(arch::PlatformConfig::pine_a64(), 5);
    hafnium::Manifest m;
    hafnium::VmSpec p;
    p.name = "kitten-primary";
    p.role = hafnium::VmRole::kPrimary;
    p.mem_bytes = 64ull << 20;
    p.vcpu_count = 4;
    hafnium::VmSpec ss;
    ss.name = "login";
    ss.role = hafnium::VmRole::kSuperSecondary;
    ss.mem_bytes = 32ull << 20;
    ss.vcpu_count = 1;
    m.vms = {p, ss};
    hafnium::Spm spm(platform, m);
    hpcsec::kitten::KittenKernel kernel(platform, spm, hpcsec::kitten::KittenConfig{});
    spm.boot();
    kernel.boot();
    LinuxGuestOs login(spm, *spm.super_secondary());
    int seen_irq = -1;
    login.device_irq_hook = [&](int irq) { seen_irq = irq; };
    login.start();
    kernel.launch_vm(2);

    // Raise the UART SPI (32): primary receives it and forwards.
    platform.irqc().raise_external(32);
    platform.engine().run_until(platform.engine().clock().from_millis(50));
    EXPECT_EQ(seen_irq, 32);
    EXPECT_EQ(login.stats().device_irqs, 1u);
    EXPECT_GE(kernel.stats().forwarded_irqs, 1u);
    EXPECT_GE(spm.stats().forwarded_device_irqs, 1u);
}

}  // namespace
}  // namespace hpcsec::linux_fwk
