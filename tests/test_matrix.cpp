// Coverage matrix: every paper workload on every node configuration
// (scaled down) must finish, score positively, and respect the global
// performance ordering native >= kitten-virtualized (within tolerance).
#include <gtest/gtest.h>

#include "core/harness.h"
#include "workloads/hpcg.h"
#include "workloads/nas.h"
#include "workloads/randomaccess.h"
#include "workloads/stream.h"

namespace hpcsec::core {
namespace {

std::vector<wl::WorkloadSpec> all_specs() {
    std::vector<wl::WorkloadSpec> specs = {wl::hpcg_spec(), wl::stream_spec(),
                                           wl::randomaccess_spec()};
    for (auto& s : wl::nas_suite()) specs.push_back(s);
    return specs;
}

using MatrixParam = std::tuple<int, SchedulerKind>;

class WorkloadMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(WorkloadMatrix, RunsAndScores) {
    const auto [spec_idx, kind] = GetParam();
    wl::WorkloadSpec spec = all_specs()[static_cast<std::size_t>(spec_idx)];
    spec.units_per_thread_step /= 16;  // keep the matrix fast

    Harness::Options opt;
    opt.trials = 1;
    opt.measurement_noise = false;
    Harness h(opt);
    const TrialResult r = h.run_trial(kind, spec, 9000 + spec_idx);
    EXPECT_GT(r.score, 0.0);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_LT(r.seconds, 60.0);

    // Virtualized configurations never beat native by more than noise-free
    // rounding (they can only add overhead in this model).
    if (kind != SchedulerKind::kNativeKitten) {
        const TrialResult native =
            h.run_trial(SchedulerKind::kNativeKitten, spec, 9000 + spec_idx);
        EXPECT_LE(r.score, native.score * 1.0001)
            << spec.name << " under " << to_string(kind);
        // And they stay within 10% of native — "low overhead" is the title.
        EXPECT_GT(r.score, native.score * 0.90)
            << spec.name << " under " << to_string(kind);
    }
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
    const auto [spec_idx, kind] = info.param;
    return all_specs()[static_cast<std::size_t>(spec_idx)].name + "_" +
           to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, WorkloadMatrix,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(SchedulerKind::kNativeKitten,
                                         SchedulerKind::kKittenPrimary,
                                         SchedulerKind::kLinuxPrimary)),
    matrix_name);

}  // namespace
}  // namespace hpcsec::core
