// Assorted coverage: perf-model pricing math, UART, platform presets,
// control-task context, burst work, guest-config knobs, string helpers,
// harness options.
#include <gtest/gtest.h>

#include "arch/isa.h"
#include "arch/perfmodel.h"
#include "arch/platform.h"
#include "arch/uart.h"
#include "core/harness.h"
#include "core/jobs.h"
#include "core/node.h"
#include "hafnium/hypercall.h"
#include "hafnium/vm.h"
#include "kitten/guest.h"
#include "linux_fwk/burst.h"
#include "workloads/nas.h"
#include "workloads/selfish.h"

namespace hpcsec {
namespace {

// --- PerfModel pricing --------------------------------------------------------

TEST(PerfModel, UnitCostAddsWalkPenaltyByMode) {
    arch::PerfModel perf;
    arch::WorkProfile p;
    p.cycles_per_unit = 100.0;
    p.mem_refs_per_unit = 2.0;
    p.tlb_miss_rate = 0.5;
    const double native = perf.unit_cost(p, arch::TranslationMode::kNative);
    const double two_stage = perf.unit_cost(p, arch::TranslationMode::kTwoStage);
    EXPECT_DOUBLE_EQ(native, 100.0 + 1.0 * perf.stage1_walk);
    EXPECT_DOUBLE_EQ(two_stage, 100.0 + 1.0 * perf.nested_walk);
    EXPECT_GT(two_stage, native);
}

TEST(PerfModel, RefillTransientCappedByTlbCapacity) {
    arch::PerfModel perf;
    arch::WorkProfile small;
    small.working_set_pages = 10;
    arch::WorkProfile huge;
    huge.working_set_pages = 100000;
    const auto t_small = perf.refill_transient(small, arch::TranslationMode::kNative);
    const auto t_huge = perf.refill_transient(huge, arch::TranslationMode::kNative);
    EXPECT_EQ(t_small,
              static_cast<sim::Cycles>(10 * perf.tlb_refill_fraction *
                                       perf.stage1_walk));
    EXPECT_EQ(t_huge,
              static_cast<sim::Cycles>(perf.tlb_capacity_pages *
                                       perf.tlb_refill_fraction * perf.stage1_walk));
}

TEST(PerfModel, ZeroMissWorkloadPaysNoWalks) {
    arch::PerfModel perf;
    arch::WorkProfile p;
    p.cycles_per_unit = 10.0;
    p.mem_refs_per_unit = 5.0;
    p.tlb_miss_rate = 0.0;
    EXPECT_DOUBLE_EQ(perf.unit_cost(p, arch::TranslationMode::kTwoStage), 10.0);
}

// --- UART standalone ------------------------------------------------------------

TEST(Uart, CapturesBytesAndRaisesSpi) {
    arch::MemoryMap mem;
    mem.add_region({"uart", 0x9000'0000, 0x1000, arch::RegionKind::kMmio,
                    arch::World::kNonSecure});
    const auto irqc = arch::IsaOps::get(arch::Isa::kArm).make_irq_controller(1);
    arch::IrqController& gic = *irqc;
    gic.enable_irq(40);
    gic.set_external_target(40, 0);
    arch::Uart uart(mem, &gic, 0x9000'0000, 40);
    for (const char c : std::string("ok\n")) {
        mem.write64(0x9000'0000 + arch::Uart::kDataReg,
                    static_cast<std::uint64_t>(c), arch::World::kNonSecure);
    }
    EXPECT_EQ(uart.output(), "ok\n");
    EXPECT_EQ(uart.bytes_transmitted(), 3u);
    EXPECT_TRUE(gic.has_deliverable(0));
    EXPECT_EQ(mem.read64(0x9000'0000 + arch::Uart::kFlagReg, arch::World::kNonSecure),
              arch::Uart::kFlagTxReady);
    uart.clear_output();
    EXPECT_TRUE(uart.output().empty());
}

TEST(Uart, RegisterOnNonMmioBaseThrows) {
    arch::MemoryMap mem;
    mem.add_region({"ram", 0x4000'0000, 1ull << 20, arch::RegionKind::kRam,
                    arch::World::kNonSecure});
    EXPECT_THROW(arch::Uart(mem, nullptr, 0x4000'0000), std::invalid_argument);
}

// --- platform presets ---------------------------------------------------------------

TEST(PlatformPresets, NodeBootsOnQemuVirt) {
    core::NodeConfig cfg =
        core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 3);
    cfg.platform = arch::PlatformConfig::qemu_virt();
    core::Node node(cfg);
    node.boot();
    wl::WorkloadSpec s;
    s.name = "t";
    s.nthreads = 4;
    s.supersteps = 2;
    s.units_per_thread_step = 50000;
    s.profile.cycles_per_unit = 5;
    wl::ParallelWorkload w(s);
    EXPECT_GT(node.run_workload(w, 30.0), 0.0);
}

TEST(PlatformPresets, NodeBootsOnThunderX2With28Cores) {
    core::NodeConfig cfg =
        core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 3);
    cfg.platform = arch::PlatformConfig::thunderx2();
    core::Node node(cfg);
    node.boot();
    EXPECT_EQ(node.compute_vm()->vcpu_count(), 28);
    wl::WorkloadSpec s;
    s.name = "t";
    s.nthreads = 28;
    s.supersteps = 2;
    s.units_per_thread_step = 50000;
    s.profile.cycles_per_unit = 5;
    wl::ParallelWorkload w(s);
    EXPECT_GT(node.run_workload(w, 30.0), 0.0);
}

// --- ControlTaskCtx -------------------------------------------------------------------

TEST(ControlTaskCtx, ProcessesQueuedCommandsInOrder) {
    core::ControlTaskCtx ctx(1000.0);
    std::vector<std::uint64_t> seen;
    ctx.handler = [&](const core::JobCommand& cmd) { seen.push_back(cmd.tag); };
    EXPECT_EQ(ctx.remaining_units(), 0.0);
    core::JobCommand a;
    a.tag = 1;
    core::JobCommand b;
    b.tag = 2;
    ctx.enqueue(a);
    ctx.enqueue(b);
    EXPECT_EQ(ctx.remaining_units(), 1000.0);
    ctx.advance(1000.0, 0);  // finishes a, reloads for b
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{1}));
    EXPECT_EQ(ctx.remaining_units(), 1000.0);
    ctx.advance(500.0, 0);
    ctx.advance(500.0, 0);
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(ctx.processed(), 2u);
    EXPECT_EQ(ctx.remaining_units(), 0.0);
}

// --- BurstWork -----------------------------------------------------------------------

TEST(BurstWork, RefillAndDrain) {
    linux_fwk::BurstWork burst("kw", arch::TranslationMode::kTwoStage);
    EXPECT_EQ(burst.remaining_units(), 0.0);
    burst.refill(5000.0);
    burst.advance(2000.0, 0);
    EXPECT_EQ(burst.remaining_units(), 3000.0);
    burst.advance(9999.0, 0);
    EXPECT_EQ(burst.remaining_units(), 0.0);
    EXPECT_EQ(burst.total_injected(), 5000.0);
    EXPECT_EQ(burst.mode(), arch::TranslationMode::kTwoStage);
}

// --- guest config knobs ----------------------------------------------------------------

TEST(GuestConfig, TicklessGuestProducesNoVtimerFires) {
    core::NodeConfig cfg =
        core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 8);
    cfg.guest.tick_enabled = false;
    core::Node node(cfg);
    node.boot();
    wl::SelfishBenchmark selfish(4, node.platform().engine().clock());
    node.run_selfish(selfish, 2.0);
    EXPECT_EQ(node.spm()->stats().vtimer_fires, 0u);
    EXPECT_EQ(node.compute_guest()->stats().ticks, 0u);
}

TEST(GuestConfig, GuestTickRateIsConfigurable) {
    core::NodeConfig cfg =
        core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 8);
    cfg.guest.tick_hz = 100.0;
    core::Node node(cfg);
    node.boot();
    wl::SelfishBenchmark selfish(4, node.platform().engine().clock());
    node.run_selfish(selfish, 1.0);
    // ~100 guest ticks per vcpu per second.
    EXPECT_NEAR(static_cast<double>(node.compute_guest()->stats().ticks), 400.0,
                80.0);
}

// --- string helpers ---------------------------------------------------------------------

TEST(Strings, EnumsRoundTripToText) {
    EXPECT_EQ(hafnium::to_string(hafnium::Call::kVcpuRun), "HF_VCPU_RUN");
    EXPECT_EQ(hafnium::to_string(hafnium::Call::kMemShare), "FFA_MEM_SHARE");
    EXPECT_EQ(hafnium::to_string(hafnium::HfError::kDenied), "denied");
    EXPECT_STREQ(hafnium::to_string(hafnium::VcpuState::kBlocked), "blocked");
    EXPECT_STREQ(hafnium::to_string(hafnium::ExitReason::kPreempted), "preempted");
    EXPECT_EQ(hafnium::to_string(hafnium::VmRole::kSuperSecondary),
              "super-secondary");
    EXPECT_EQ(core::to_string(core::SchedulerKind::kLinuxPrimary), "Linux");
    EXPECT_EQ(arch::to_string(arch::FaultKind::kSecurity), "security");
    EXPECT_EQ(arch::to_string(arch::El::kEl2), "EL2");
    EXPECT_EQ(core::to_string(core::JobOp::kCreateVm), "create-vm");
}

// --- harness options ---------------------------------------------------------------------

TEST(HarnessOptions, MeasurementNoiseTogglesVariance) {
    wl::WorkloadSpec spec = wl::nas_ep_spec();  // deterministic-friendly
    spec.units_per_thread_step /= 20;
    spec.measurement_noise_sigma = 0.05;

    core::Harness::Options noisy;
    noisy.trials = 1;
    noisy.measurement_noise = true;
    core::Harness h_noisy(noisy);

    core::Harness::Options clean = noisy;
    clean.measurement_noise = false;
    core::Harness h_clean(clean);

    const double a = h_noisy
                         .run_trial(core::SchedulerKind::kNativeKitten, spec, 1)
                         .score;
    const double b = h_clean
                         .run_trial(core::SchedulerKind::kNativeKitten, spec, 1)
                         .score;
    EXPECT_NE(a, b);  // the noise multiplier moved the score
    // And clean runs are bit-identical across repetitions.
    const double b2 = h_clean
                          .run_trial(core::SchedulerKind::kNativeKitten, spec, 1)
                          .score;
    EXPECT_EQ(b, b2);
}

TEST(HarnessOptions, ConfigFactoryIsHonoured) {
    core::Harness::Options opt;
    opt.trials = 1;
    bool called = false;
    opt.config_factory = [&called](core::SchedulerKind kind, std::uint64_t seed) {
        called = true;
        return core::Harness::default_config(kind, seed);
    };
    core::Harness h(opt);
    wl::WorkloadSpec spec;
    spec.name = "t";
    spec.nthreads = 4;
    spec.supersteps = 1;
    spec.units_per_thread_step = 1000;
    spec.profile.cycles_per_unit = 1;
    (void)h.run_trial(core::SchedulerKind::kNativeKitten, spec, 1);
    EXPECT_TRUE(called);
}

}  // namespace
}  // namespace hpcsec
