// Observability stack: metrics registry semantics, structured recorder
// filtering + TraceLog mirroring, metrics snapshots from a scripted
// hafnium run, and the Chrome trace-event JSON exporter.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "core/harness.h"
#include "core/node.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace_export.h"
#include "sim/trace.h"

namespace hpcsec {
namespace {

// --- minimal JSON parser (validity only) ------------------------------------

class JsonChecker {
public:
    explicit JsonChecker(const std::string& text) : s_(text) {}

    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    bool value() {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }
    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }
    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }
    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') ++pos_;
            ++pos_;
        }
        if (pos_ >= s_.size()) return false;
        ++pos_;  // closing '"'
        return true;
    }
    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }
    bool literal(const char* lit) {
        const std::string l(lit);
        if (s_.compare(pos_, l.size(), l) != 0) return false;
        pos_ += l.size();
        return true;
    }
    void skip_ws() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
            ++pos_;
        }
    }
    [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    const std::string& s_;
    std::size_t pos_ = 0;
};

/// Extract the numeric value following `"key":` in a single JSON line, or
/// -1 when the key is absent.
double field_of(const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) return -1.0;
    return std::atof(line.c_str() + at + needle.size());
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramRoundTrip) {
    obs::MetricsRegistry reg;
    const auto c = reg.counter("hyp.calls");
    const auto g = reg.gauge("engine.events");
    const auto h = reg.histogram("lat.us", 1.0, 2.0, 16);

    reg.add(c);
    reg.add(c, 4);
    reg.set(g, 123.5);
    reg.observe(h, 3.0);
    reg.observe(h, 5.0);

    const auto snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.value_of("hyp.calls"), 5.0);
    EXPECT_DOUBLE_EQ(snap.value_of("engine.events"), 123.5);
    const auto* hist = snap.find("lat.us");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->kind, obs::MetricKind::kHistogram);
    EXPECT_EQ(hist->stats.count(), 2u);
    EXPECT_DOUBLE_EQ(hist->stats.mean(), 4.0);
    EXPECT_FALSE(hist->buckets.empty());
}

TEST(Metrics, ReRegistrationReturnsSameHandle) {
    obs::MetricsRegistry reg;
    const auto a = reg.counter("x");
    const auto b = reg.counter("x");
    EXPECT_EQ(a, b);
    reg.add(a);
    reg.add(b);
    EXPECT_EQ(reg.counter_value(a), 2u);
}

TEST(Metrics, KindMismatchThrows) {
    obs::MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), std::logic_error);
    EXPECT_THROW(reg.histogram("x"), std::logic_error);
}

TEST(Metrics, SnapshotWritesParsableJsonAndCsv) {
    obs::MetricsRegistry reg;
    reg.add(reg.counter("a"));
    reg.set(reg.gauge("b\"quoted"), 2.0);
    reg.observe(reg.histogram("c"), 7.0);

    std::ostringstream json;
    reg.snapshot().write_json(json);
    EXPECT_TRUE(JsonChecker(json.str()).valid()) << json.str();

    std::ostringstream csv;
    reg.snapshot().write_csv(csv);
    EXPECT_NE(csv.str().find("name,kind,value"), std::string::npos);
    EXPECT_NE(csv.str().find("a,counter,1"), std::string::npos);
}

TEST(Metrics, AggregateAcrossSnapshots) {
    obs::MetricsRegistry reg;
    const auto g = reg.gauge("v");
    obs::MetricsAggregate agg;
    reg.set(g, 1.0);
    agg.add(reg.snapshot());
    reg.set(g, 3.0);
    agg.add(reg.snapshot());

    ASSERT_EQ(agg.rows().size(), 1u);
    EXPECT_EQ(agg.rows()[0].name, "v");
    EXPECT_DOUBLE_EQ(agg.rows()[0].stats.mean(), 2.0);
    EXPECT_EQ(agg.rows()[0].stats.count(), 2u);

    std::ostringstream os;
    agg.write_json(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

// --- SpanRecorder ------------------------------------------------------------

TEST(Recorder, DisabledRecordsNothing) {
    obs::SpanRecorder rec;  // default mask 0
    rec.instant(10, obs::EventType::kVmExit, 0, 1, 0, 0);
    rec.span(10, 20, obs::EventType::kVmRun, 0);
    EXPECT_TRUE(rec.events().empty());
}

TEST(Recorder, CategoryMaskFilters) {
    obs::SpanRecorder rec;
    rec.set_mask(obs::to_mask(obs::Category::kIrq));
    rec.instant(1, obs::EventType::kVmExit, 0);      // kVm: filtered
    rec.instant(2, obs::EventType::kIrqDeliver, 0);  // kIrq: recorded
    ASSERT_EQ(rec.events().size(), 1u);
    EXPECT_EQ(rec.events()[0].type, obs::EventType::kIrqDeliver);
    EXPECT_EQ(rec.count(obs::EventType::kVmExit), 0u);
    EXPECT_EQ(rec.count(obs::EventType::kIrqDeliver), 1u);
}

TEST(Recorder, SpanCarriesIntervalAndArgs) {
    obs::SpanRecorder rec;
    rec.set_mask(obs::to_mask(obs::Category::kAll));
    rec.span(100, 250, obs::EventType::kVmRun, 2, 1, 3, 0);
    ASSERT_EQ(rec.events().size(), 1u);
    const auto& e = rec.events()[0];
    EXPECT_TRUE(e.is_span());
    EXPECT_EQ(e.start, 100u);
    EXPECT_EQ(e.end, 250u);
    EXPECT_EQ(e.core, 2);
    EXPECT_EQ(e.a0, 1);
    EXPECT_EQ(e.a1, 3);
}

TEST(Recorder, MirrorsIntoTraceLog) {
    sim::TraceLog log;
    log.enable(sim::TraceCat::kVm);
    log.set_retain(true);

    obs::SpanRecorder rec;
    rec.set_mask(obs::to_mask(obs::Category::kAll));
    rec.set_mirror(&log);
    rec.instant(5, obs::EventType::kVmExit, 1, 2, 0, 1);
    rec.instant(6, obs::EventType::kKernelTick, 0);  // kSched: not mirrored

    EXPECT_EQ(log.count_matching("vm-exit"), 1u);
    EXPECT_EQ(log.count_matching("kernel-tick"), 0u);
}

// --- scripted hafnium run ----------------------------------------------------

core::NodeConfig observed_config(core::SchedulerKind kind) {
    core::NodeConfig cfg = core::Harness::default_config(kind, 7);
    cfg.platform.obs_mask = obs::to_mask(obs::Category::kAll);
    return cfg;
}

/// Small compute-bound workload: enough ticks to force VM exits.
void run_tiny_workload(core::Node& node) {
    wl::WorkloadSpec s;
    s.name = "tiny";
    s.nthreads = 4;
    s.supersteps = 4;
    s.units_per_thread_step = 50000;
    s.profile.cycles_per_unit = 10;
    wl::ParallelWorkload w(s);
    node.run_workload(w, 60.0);
}

TEST(ObsIntegration, ExitReasonCountersMatchSpmStats) {
    core::Node node(observed_config(core::SchedulerKind::kKittenPrimary));
    node.boot();
    run_tiny_workload(node);

    const auto& stats = node.spm()->stats();
    ASSERT_GT(stats.vm_exits, 0u);

    const auto& events = node.platform().recorder().events();
    std::uint64_t by_reason[4] = {0, 0, 0, 0};
    std::uint64_t runs = 0;
    for (const auto& e : events) {
        if (e.type == obs::EventType::kVmExit) ++by_reason[e.a2];
        if (e.type == obs::EventType::kVmRun) ++runs;
    }
    EXPECT_EQ(by_reason[0], stats.exits_preempted);
    EXPECT_EQ(by_reason[1], stats.exits_yield);
    EXPECT_EQ(by_reason[2], stats.exits_blocked);
    EXPECT_EQ(by_reason[0] + by_reason[1] + by_reason[2] + by_reason[3],
              stats.vm_exits);
    // Every exit closes exactly one vm-run span.
    EXPECT_EQ(runs, stats.vm_exits);
}

// Virtual-timer VIRQs are injected on three paths in the SPM (inline while
// the vcpu is running, super-secondary direct routing, and the entry-time
// drain); every one of them must record a kVirqInject instant. Needs a run
// long enough for the guest's 10 Hz vtimer to actually fire.
TEST(ObsIntegration, VirqInjectEventsMatchSpmStat) {
    core::Node node(observed_config(core::SchedulerKind::kKittenPrimary));
    node.boot();
    wl::WorkloadSpec s;
    s.name = "tiny-long";
    s.nthreads = 4;
    s.supersteps = 4;
    s.units_per_thread_step = 8000000;
    s.profile.cycles_per_unit = 10;
    wl::ParallelWorkload w(s);
    node.run_workload(w, 60.0);

    const auto& stats = node.spm()->stats();
    ASSERT_GT(stats.virq_injections, 0u);
    EXPECT_EQ(node.platform().recorder().count(obs::EventType::kVirqInject),
              stats.virq_injections);
    // Each vtimer injection drives the guest's tick handler.
    EXPECT_EQ(node.platform().recorder().count(obs::EventType::kGuestTick),
              stats.virq_injections);
}

TEST(ObsIntegration, PublishedMetricsMatchComponentStats) {
    core::Node node(observed_config(core::SchedulerKind::kKittenPrimary));
    node.boot();
    run_tiny_workload(node);

    const auto snap = node.publish_metrics();
    const auto& stats = node.spm()->stats();
    EXPECT_DOUBLE_EQ(snap.value_of("hf.vm_exits"),
                     static_cast<double>(stats.vm_exits));
    EXPECT_DOUBLE_EQ(snap.value_of("hf.hypercalls"),
                     static_cast<double>(stats.hypercalls));
    EXPECT_DOUBLE_EQ(snap.value_of("kitten.ticks"),
                     static_cast<double>(node.kitten()->stats().ticks));
    EXPECT_GT(snap.value_of("engine.events"), 0.0);
    const auto* hist = snap.find("hf.vcpu_run_us");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->stats.count(), stats.vm_exits);
}

TEST(ObsIntegration, DisabledMaskRecordsNoEventsButMetricsStillWork) {
    core::NodeConfig cfg = core::Harness::default_config(
        core::SchedulerKind::kKittenPrimary, 7);  // obs_mask defaults to 0
    core::Node node(cfg);
    node.boot();
    run_tiny_workload(node);

    EXPECT_TRUE(node.platform().recorder().events().empty());
    const auto snap = node.publish_metrics();
    EXPECT_GT(snap.value_of("hf.vm_exits"), 0.0);
}

// --- trace export ------------------------------------------------------------

TEST(TraceExport, WritesParsableJsonWithMonotonicTsPerCore) {
    core::Node node(observed_config(core::SchedulerKind::kLinuxPrimary));
    node.boot();
    run_tiny_workload(node);

    obs::TraceExporter exporter(node.platform().engine().clock());
    exporter.add_process(0, "linux", node.platform().ncores(),
                         node.platform().recorder().events());
    std::ostringstream os;
    exporter.write(os);
    const std::string text = os.str();

    EXPECT_TRUE(JsonChecker(text).valid());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"vm-run\""), std::string::npos);
    EXPECT_NE(text.find("vm_exits"), std::string::npos);   // counter track
    EXPECT_NE(text.find("preempted"), std::string::npos);  // exit-reason name

    // Non-metadata events are sorted by (tid, ts) within the process.
    std::istringstream lines(text);
    std::string line;
    double last_ts[64];
    for (double& t : last_ts) t = -1.0;
    std::size_t nevents = 0;
    while (std::getline(lines, line)) {
        if (line.find("\"ph\":\"M\"") != std::string::npos) continue;
        const double ts = field_of(line, "ts");
        const double tid = field_of(line, "tid");
        if (ts < 0.0 || tid < 0.0 || tid >= 64.0) continue;
        const auto t = static_cast<std::size_t>(tid);
        EXPECT_GE(ts, last_ts[t]) << line;
        last_ts[t] = ts;
        ++nevents;
    }
    EXPECT_GT(nevents, 10u);
}

TEST(TraceExport, MultiProcessDistinctPids) {
    obs::SpanRecorder rec;
    rec.set_mask(obs::to_mask(obs::Category::kAll));
    rec.span(0, 100, obs::EventType::kVmRun, 0, 1, 0, 0);

    obs::TraceExporter exporter(sim::ClockSpec{1'000'000'000});
    exporter.add_process(0, "native", 1, rec.events());
    exporter.add_process(1, "kitten", 1, rec.events());
    std::ostringstream os;
    exporter.write(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid());
    EXPECT_NE(os.str().find("\"pid\":0"), std::string::npos);
    EXPECT_NE(os.str().find("\"pid\":1"), std::string::npos);
}

}  // namespace
}  // namespace hpcsec
