// Observability stack: metrics registry semantics, structured recorder
// filtering + TraceLog mirroring, metrics snapshots from a scripted
// hafnium run, the cycle-attribution profiler, the always-on flight
// recorder, windowed metric aggregation, and the Chrome trace-event JSON
// exporter (including a DOM-level Perfetto round trip).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/check.h"
#include "check/corrupt.h"
#include "core/harness.h"
#include "core/node.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/trace_export.h"
#include "sim/trace.h"

namespace hpcsec {
namespace {

// --- minimal JSON parser (validity only) ------------------------------------

class JsonChecker {
public:
    explicit JsonChecker(const std::string& text) : s_(text) {}

    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    bool value() {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }
    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }
    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }
    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') ++pos_;
            ++pos_;
        }
        if (pos_ >= s_.size()) return false;
        ++pos_;  // closing '"'
        return true;
    }
    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }
    bool literal(const char* lit) {
        const std::string l(lit);
        if (s_.compare(pos_, l.size(), l) != 0) return false;
        pos_ += l.size();
        return true;
    }
    void skip_ws() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
            ++pos_;
        }
    }
    [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    const std::string& s_;
    std::size_t pos_ = 0;
};

/// Extract the numeric value following `"key":` in a single JSON line, or
/// -1 when the key is absent.
double field_of(const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) return -1.0;
    return std::atof(line.c_str() + at + needle.size());
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramRoundTrip) {
    obs::MetricsRegistry reg;
    const auto c = reg.counter("hyp.calls");
    const auto g = reg.gauge("engine.events");
    const auto h = reg.histogram("lat.us", 1.0, 2.0, 16);

    reg.add(c);
    reg.add(c, 4);
    reg.set(g, 123.5);
    reg.observe(h, 3.0);
    reg.observe(h, 5.0);

    const auto snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.value_of("hyp.calls"), 5.0);
    EXPECT_DOUBLE_EQ(snap.value_of("engine.events"), 123.5);
    const auto* hist = snap.find("lat.us");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->kind, obs::MetricKind::kHistogram);
    EXPECT_EQ(hist->stats.count(), 2u);
    EXPECT_DOUBLE_EQ(hist->stats.mean(), 4.0);
    EXPECT_FALSE(hist->buckets.empty());
}

TEST(Metrics, ReRegistrationReturnsSameHandle) {
    obs::MetricsRegistry reg;
    const auto a = reg.counter("x");
    const auto b = reg.counter("x");
    EXPECT_EQ(a, b);
    reg.add(a);
    reg.add(b);
    EXPECT_EQ(reg.counter_value(a), 2u);
}

TEST(Metrics, KindMismatchThrows) {
    obs::MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), std::logic_error);
    EXPECT_THROW(reg.histogram("x"), std::logic_error);
}

TEST(Metrics, SnapshotWritesParsableJsonAndCsv) {
    obs::MetricsRegistry reg;
    reg.add(reg.counter("a"));
    reg.set(reg.gauge("b\"quoted"), 2.0);
    reg.observe(reg.histogram("c"), 7.0);

    std::ostringstream json;
    reg.snapshot().write_json(json);
    EXPECT_TRUE(JsonChecker(json.str()).valid()) << json.str();

    std::ostringstream csv;
    reg.snapshot().write_csv(csv);
    EXPECT_NE(csv.str().find("name,kind,value"), std::string::npos);
    EXPECT_NE(csv.str().find("a,counter,1"), std::string::npos);
}

TEST(Metrics, AggregateAcrossSnapshots) {
    obs::MetricsRegistry reg;
    const auto g = reg.gauge("v");
    obs::MetricsAggregate agg;
    reg.set(g, 1.0);
    agg.add(reg.snapshot());
    reg.set(g, 3.0);
    agg.add(reg.snapshot());

    ASSERT_EQ(agg.rows().size(), 1u);
    EXPECT_EQ(agg.rows()[0].name, "v");
    EXPECT_DOUBLE_EQ(agg.rows()[0].stats.mean(), 2.0);
    EXPECT_EQ(agg.rows()[0].stats.count(), 2u);

    std::ostringstream os;
    agg.write_json(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

// --- SpanRecorder ------------------------------------------------------------

TEST(Recorder, DisabledRecordsNothing) {
    obs::SpanRecorder rec;  // default mask 0
    rec.instant(10, obs::EventType::kVmExit, 0, 1, 0, 0);
    rec.span(10, 20, obs::EventType::kVmRun, 0);
    EXPECT_TRUE(rec.events().empty());
}

TEST(Recorder, CategoryMaskFilters) {
    obs::SpanRecorder rec;
    rec.set_mask(obs::to_mask(obs::Category::kIrq));
    rec.instant(1, obs::EventType::kVmExit, 0);      // kVm: filtered
    rec.instant(2, obs::EventType::kIrqDeliver, 0);  // kIrq: recorded
    ASSERT_EQ(rec.events().size(), 1u);
    EXPECT_EQ(rec.events()[0].type, obs::EventType::kIrqDeliver);
    EXPECT_EQ(rec.count(obs::EventType::kVmExit), 0u);
    EXPECT_EQ(rec.count(obs::EventType::kIrqDeliver), 1u);
}

TEST(Recorder, SpanCarriesIntervalAndArgs) {
    obs::SpanRecorder rec;
    rec.set_mask(obs::to_mask(obs::Category::kAll));
    rec.span(100, 250, obs::EventType::kVmRun, 2, 1, 3, 0);
    ASSERT_EQ(rec.events().size(), 1u);
    const auto& e = rec.events()[0];
    EXPECT_TRUE(e.is_span());
    EXPECT_EQ(e.start, 100u);
    EXPECT_EQ(e.end, 250u);
    EXPECT_EQ(e.core, 2);
    EXPECT_EQ(e.a0, 1);
    EXPECT_EQ(e.a1, 3);
}

TEST(Recorder, MirrorsIntoTraceLog) {
    sim::TraceLog log;
    log.enable(sim::TraceCat::kVm);
    log.set_retain(true);

    obs::SpanRecorder rec;
    rec.set_mask(obs::to_mask(obs::Category::kAll));
    rec.set_mirror(&log);
    rec.instant(5, obs::EventType::kVmExit, 1, 2, 0, 1);
    rec.instant(6, obs::EventType::kKernelTick, 0);  // kSched: not mirrored

    EXPECT_EQ(log.count_matching("vm-exit"), 1u);
    EXPECT_EQ(log.count_matching("kernel-tick"), 0u);
}

// --- scripted hafnium run ----------------------------------------------------

core::NodeConfig observed_config(core::SchedulerKind kind) {
    core::NodeConfig cfg = core::Harness::default_config(kind, 7);
    cfg.platform.obs_mask = obs::to_mask(obs::Category::kAll);
    return cfg;
}

/// Small compute-bound workload: enough ticks to force VM exits.
void run_tiny_workload(core::Node& node) {
    wl::WorkloadSpec s;
    s.name = "tiny";
    s.nthreads = 4;
    s.supersteps = 4;
    s.units_per_thread_step = 50000;
    s.profile.cycles_per_unit = 10;
    wl::ParallelWorkload w(s);
    node.run_workload(w, 60.0);
}

TEST(ObsIntegration, ExitReasonCountersMatchSpmStats) {
    core::Node node(observed_config(core::SchedulerKind::kKittenPrimary));
    node.boot();
    run_tiny_workload(node);

    const auto& stats = node.spm()->stats();
    ASSERT_GT(stats.vm_exits, 0u);

    const auto& events = node.platform().recorder().events();
    std::uint64_t by_reason[4] = {0, 0, 0, 0};
    std::uint64_t runs = 0;
    for (const auto& e : events) {
        if (e.type == obs::EventType::kVmExit) ++by_reason[e.a2];
        if (e.type == obs::EventType::kVmRun) ++runs;
    }
    EXPECT_EQ(by_reason[0], stats.exits_preempted);
    EXPECT_EQ(by_reason[1], stats.exits_yield);
    EXPECT_EQ(by_reason[2], stats.exits_blocked);
    EXPECT_EQ(by_reason[0] + by_reason[1] + by_reason[2] + by_reason[3],
              stats.vm_exits);
    // Every exit closes exactly one vm-run span.
    EXPECT_EQ(runs, stats.vm_exits);
}

// Virtual-timer VIRQs are injected on three paths in the SPM (inline while
// the vcpu is running, super-secondary direct routing, and the entry-time
// drain); every one of them must record a kVirqInject instant. Needs a run
// long enough for the guest's 10 Hz vtimer to actually fire.
TEST(ObsIntegration, VirqInjectEventsMatchSpmStat) {
    core::Node node(observed_config(core::SchedulerKind::kKittenPrimary));
    node.boot();
    wl::WorkloadSpec s;
    s.name = "tiny-long";
    s.nthreads = 4;
    s.supersteps = 4;
    s.units_per_thread_step = 8000000;
    s.profile.cycles_per_unit = 10;
    wl::ParallelWorkload w(s);
    node.run_workload(w, 60.0);

    const auto& stats = node.spm()->stats();
    ASSERT_GT(stats.virq_injections, 0u);
    EXPECT_EQ(node.platform().recorder().count(obs::EventType::kVirqInject),
              stats.virq_injections);
    // Each vtimer injection drives the guest's tick handler.
    EXPECT_EQ(node.platform().recorder().count(obs::EventType::kGuestTick),
              stats.virq_injections);
}

TEST(ObsIntegration, PublishedMetricsMatchComponentStats) {
    core::Node node(observed_config(core::SchedulerKind::kKittenPrimary));
    node.boot();
    run_tiny_workload(node);

    const auto snap = node.publish_metrics();
    const auto& stats = node.spm()->stats();
    EXPECT_DOUBLE_EQ(snap.value_of("hf.vm_exits"),
                     static_cast<double>(stats.vm_exits));
    EXPECT_DOUBLE_EQ(snap.value_of("hf.hypercalls"),
                     static_cast<double>(stats.hypercalls));
    EXPECT_DOUBLE_EQ(snap.value_of("kitten.ticks"),
                     static_cast<double>(node.kitten()->stats().ticks));
    EXPECT_GT(snap.value_of("engine.events"), 0.0);
    const auto* hist = snap.find("hf.vcpu_run_us");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->stats.count(), stats.vm_exits);
}

TEST(ObsIntegration, DisabledMaskRecordsNoEventsButMetricsStillWork) {
    core::NodeConfig cfg = core::Harness::default_config(
        core::SchedulerKind::kKittenPrimary, 7);  // obs_mask defaults to 0
    core::Node node(cfg);
    node.boot();
    run_tiny_workload(node);

    EXPECT_TRUE(node.platform().recorder().events().empty());
    const auto snap = node.publish_metrics();
    EXPECT_GT(snap.value_of("hf.vm_exits"), 0.0);
}

// --- trace export ------------------------------------------------------------

TEST(TraceExport, WritesParsableJsonWithMonotonicTsPerCore) {
    core::Node node(observed_config(core::SchedulerKind::kLinuxPrimary));
    node.boot();
    run_tiny_workload(node);

    obs::TraceExporter exporter(node.platform().engine().clock());
    exporter.add_process(0, "linux", node.platform().ncores(),
                         node.platform().recorder().events());
    std::ostringstream os;
    exporter.write(os);
    const std::string text = os.str();

    EXPECT_TRUE(JsonChecker(text).valid());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"vm-run\""), std::string::npos);
    EXPECT_NE(text.find("vm_exits"), std::string::npos);   // counter track
    EXPECT_NE(text.find("preempted"), std::string::npos);  // exit-reason name

    // Non-metadata events are sorted by (tid, ts) within the process.
    std::istringstream lines(text);
    std::string line;
    double last_ts[64];
    for (double& t : last_ts) t = -1.0;
    std::size_t nevents = 0;
    while (std::getline(lines, line)) {
        if (line.find("\"ph\":\"M\"") != std::string::npos) continue;
        const double ts = field_of(line, "ts");
        const double tid = field_of(line, "tid");
        if (ts < 0.0 || tid < 0.0 || tid >= 64.0) continue;
        const auto t = static_cast<std::size_t>(tid);
        EXPECT_GE(ts, last_ts[t]) << line;
        last_ts[t] = ts;
        ++nevents;
    }
    EXPECT_GT(nevents, 10u);
}

// --- trace-mask parsing ------------------------------------------------------

TEST(Recorder, ParseCategoryListSymbolicNames) {
    std::uint32_t mask = 0;
    std::string error;
    ASSERT_TRUE(obs::parse_category_list("irq,hyp", mask, error)) << error;
    EXPECT_EQ(mask, obs::to_mask(obs::Category::kIrq) |
                        obs::to_mask(obs::Category::kHyp));
    EXPECT_TRUE(error.empty());

    ASSERT_TRUE(obs::parse_category_list("all", mask, error));
    EXPECT_EQ(mask, obs::to_mask(obs::Category::kAll));
}

TEST(Recorder, ParseCategoryListNumericMasks) {
    std::uint32_t mask = 0;
    std::string error;
    ASSERT_TRUE(obs::parse_category_list("0x305", mask, error)) << error;
    EXPECT_EQ(mask, 0x305u);
    ASSERT_TRUE(obs::parse_category_list("12", mask, error)) << error;
    EXPECT_EQ(mask, 12u);
}

TEST(Recorder, ParseCategoryListMixesNamesAndNumbers) {
    std::uint32_t mask = 0;
    std::string error;
    ASSERT_TRUE(obs::parse_category_list("irq,0x300", mask, error)) << error;
    EXPECT_EQ(mask, obs::to_mask(obs::Category::kIrq) | 0x300u);
}

TEST(Recorder, ParseCategoryListRejectsUnknownTokenWithValidNames) {
    std::uint32_t mask = 0xdead;
    std::string error;
    EXPECT_FALSE(obs::parse_category_list("irq,bogus", mask, error));
    EXPECT_NE(error.find("bogus"), std::string::npos) << error;
    // The error teaches the valid vocabulary.
    EXPECT_NE(error.find("irq"), std::string::npos) << error;
    EXPECT_NE(error.find("sched"), std::string::npos) << error;
    EXPECT_NE(error.find("all"), std::string::npos) << error;
}

// --- histogram bucket bounds -------------------------------------------------

TEST(Metrics, HistogramBucketsCarryExplicitBounds) {
    obs::MetricsRegistry reg;
    const auto h = reg.histogram("lat.us", 1.0, 2.0, 8);
    reg.observe(h, 1.5);
    reg.observe(h, 3.0);
    reg.observe(h, 3.5);

    const auto snap = reg.snapshot();
    const auto* m = snap.find("lat.us");
    ASSERT_NE(m, nullptr);
    ASSERT_FALSE(m->buckets.empty());

    std::uint64_t total = 0;
    for (const auto& b : m->buckets) {
        total += b.count;
        // Every bucket states its own interval; hi < 0 marks the open top.
        EXPECT_TRUE(b.hi < 0.0 || b.hi > b.lo)
            << "bucket [" << b.lo << "," << b.hi << ")";
    }
    EXPECT_EQ(total, m->stats.count());

    // Each observation lands in a bucket whose bounds cover it.
    for (const double v : {1.5, 3.0, 3.5}) {
        bool covered = false;
        for (const auto& b : m->buckets) {
            if (v >= b.lo && (b.hi < 0.0 || v < b.hi)) covered = true;
        }
        EXPECT_TRUE(covered) << "no bucket covers " << v;
    }

    // Bounds travel through the JSON as [lo,hi,count] triples.
    std::ostringstream os;
    snap.write_json(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
    EXPECT_NE(os.str().find("\"buckets\":[["), std::string::npos) << os.str();
}

TEST(Metrics, AggregateMergesBucketsByBounds) {
    obs::MetricsRegistry reg;
    const auto h = reg.histogram("lat", 1.0, 2.0, 8);
    obs::MetricsAggregate agg;
    reg.observe(h, 3.0);
    agg.add(reg.snapshot());
    reg.observe(h, 3.0);  // same bucket again in the next snapshot
    agg.add(reg.snapshot());

    ASSERT_EQ(agg.rows().size(), 1u);
    const auto& row = agg.rows()[0];
    std::uint64_t total = 0;
    for (const auto& b : row.buckets) total += b.count;
    EXPECT_EQ(total, 3u);  // 1 from the first snapshot + 2 from the second
}

// --- windowed aggregation ----------------------------------------------------

TEST(Metrics, WindowedAggregateClosesEveryNTrials) {
    obs::MetricsRegistry reg;
    const auto g = reg.gauge("v");
    obs::MetricsAggregate agg;
    agg.set_window(2);
    for (int t = 1; t <= 5; ++t) {
        reg.set(g, static_cast<double>(t));
        agg.add(reg.snapshot());
    }

    EXPECT_EQ(agg.trials(), 5u);
    EXPECT_EQ(agg.window_size(), 2u);
    ASSERT_EQ(agg.windows().size(), 2u);  // trial 5 is still in flight

    const auto& w0 = agg.windows()[0];
    EXPECT_EQ(w0.index, 0u);
    EXPECT_EQ(w0.first_trial, 0u);
    EXPECT_EQ(w0.trials, 2u);
    ASSERT_EQ(w0.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(w0.rows[0].stats.mean(), 1.5);

    const auto& w1 = agg.windows()[1];
    EXPECT_EQ(w1.index, 1u);
    EXPECT_EQ(w1.first_trial, 2u);
    EXPECT_DOUBLE_EQ(w1.rows[0].stats.mean(), 3.5);

    // Totals still cover every trial, not just closed windows.
    ASSERT_EQ(agg.rows().size(), 1u);
    EXPECT_DOUBLE_EQ(agg.rows()[0].stats.mean(), 3.0);

    std::ostringstream os;
    agg.write_json(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
    EXPECT_NE(os.str().find("\"windows\""), std::string::npos);
}

TEST(Metrics, WindowRetainKeepsOnlyTheLastK) {
    obs::MetricsRegistry reg;
    const auto g = reg.gauge("v");
    obs::MetricsAggregate agg;
    agg.set_window(1, /*retain=*/2);
    for (int t = 0; t < 5; ++t) {
        reg.set(g, static_cast<double>(t));
        agg.add(reg.snapshot());
    }
    // 5 closed windows, bounded memory: only the newest two survive.
    ASSERT_EQ(agg.windows().size(), 2u);
    EXPECT_EQ(agg.windows()[0].index, 3u);
    EXPECT_EQ(agg.windows()[1].index, 4u);
    EXPECT_EQ(agg.windows()[1].first_trial, 4u);
}

// --- cycle-attribution profiler ----------------------------------------------

TEST(Profiler, DisabledHooksAreNoOps) {
    obs::CycleProfiler prof;
    EXPECT_FALSE(prof.enabled());
    prof.set_context(0, 1);
    prof.charge(0, obs::ProfPath::kWorldSwitch, 100);
    prof.count(0, obs::ProfPath::kInterceptor);
    prof.charge_call(0, 5, 25);
    prof.on_dispatch(10, 0);
    EXPECT_EQ(prof.total_cycles(), 0u);
    EXPECT_TRUE(prof.slots().empty());
    EXPECT_TRUE(prof.samples().empty());
}

TEST(Profiler, AttributesChargesToVmCorePath) {
    obs::CycleProfiler prof;
    prof.enable(2);
    prof.set_context(0, 3);
    prof.charge(0, obs::ProfPath::kWorldSwitch, 100);
    prof.charge(0, obs::ProfPath::kWorldSwitch, 50);
    prof.charge_call(0, 5, 25);
    prof.set_context(1, 4);
    prof.charge(1, obs::ProfPath::kTimerTick, 10);

    EXPECT_EQ(prof.total(obs::ProfPath::kWorldSwitch), 150u);
    EXPECT_EQ(prof.total(obs::ProfPath::kTimerTick), 10u);
    EXPECT_EQ(prof.total_cycles(), 185u);
    EXPECT_EQ(prof.call_total(5).cycles, 25u);
    EXPECT_EQ(prof.call_total(5).count, 1u);
    EXPECT_EQ(prof.call_total(6).count, 0u);

    bool found = false;
    for (const auto& s : prof.slots()) {
        if (s.vm == 3 && s.core == 0) {
            found = true;
            EXPECT_EQ(
                s.paths[static_cast<std::size_t>(obs::ProfPath::kWorldSwitch)]
                    .cycles,
                150u);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Profiler, CollapsedStackUsesFlamegraphFormat) {
    obs::CycleProfiler prof;
    prof.enable(1);
    prof.set_context(0, 3);
    prof.charge(0, obs::ProfPath::kWorldSwitch, 150);
    prof.charge_call(0, 5, 25);

    std::ostringstream os;
    prof.write_collapsed(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("vm3;core0;world-switch 150"), std::string::npos)
        << text;
    // No namer installed: numbered fallback leaf.
    EXPECT_NE(text.find("vm3;core0;hypercall;call_5 25"), std::string::npos)
        << text;

    prof.set_call_namer([](unsigned n) {
        return n == 5 ? std::string("HF_VM_GET_INFO") : std::string();
    });
    std::ostringstream named;
    prof.write_collapsed(named);
    EXPECT_NE(named.str().find("hypercall;HF_VM_GET_INFO 25"),
              std::string::npos)
        << named.str();

    const std::string top = prof.perf_top(sim::ClockSpec{1'000'000'000});
    EXPECT_NE(top.find("vm3/core0/world-switch"), std::string::npos) << top;
}

TEST(Profiler, MergeCombinesSlotsAndCalls) {
    obs::CycleProfiler a;
    a.enable(1);
    a.set_context(0, 2);
    a.charge(0, obs::ProfPath::kStage2Walk, 40);
    a.charge_call(0, 7, 9);

    obs::CycleProfiler b;
    b.enable(1);
    b.set_context(0, 2);
    b.charge(0, obs::ProfPath::kStage2Walk, 60);
    b.charge_call(0, 7, 1);

    obs::CycleProfiler merged;  // merge() enables an empty target
    merged.merge(a);
    merged.merge(b);
    EXPECT_TRUE(merged.enabled());
    EXPECT_EQ(merged.total(obs::ProfPath::kStage2Walk), 100u);
    EXPECT_EQ(merged.call_total(7).cycles, 10u);
    EXPECT_EQ(merged.call_total(7).count, 2u);
}

TEST(Profiler, DispatchSamplingHonoursPeriod) {
    obs::CycleProfiler prof;
    prof.enable(1);
    prof.set_sample_period(2);
    prof.set_context(0, 1);
    for (sim::SimTime t = 1; t <= 5; ++t) {
        prof.charge(0, obs::ProfPath::kHypercall, 10);
        prof.on_dispatch(t * 100, 0);
    }
    // 5 dispatches, period 2: samples at the 2nd and 4th.
    ASSERT_EQ(prof.samples().size(), 2u);
    EXPECT_EQ(prof.samples()[0].when, 200u);
    EXPECT_EQ(prof.samples()[1].when, 400u);
    // Counter samples are cumulative per path.
    const auto hyp = static_cast<std::size_t>(obs::ProfPath::kHypercall);
    EXPECT_EQ(prof.samples()[0].cycles[hyp], 20u);
    EXPECT_EQ(prof.samples()[1].cycles[hyp], 40u);
}

// --- flight recorder ---------------------------------------------------------

obs::Event instant_at(sim::SimTime t, int core) {
    obs::Event e;
    e.start = e.end = t;
    e.type = obs::EventType::kHypercall;
    e.core = core;
    return e;
}

TEST(Flight, DisarmedPushAndDumpAreNoOps) {
    obs::FlightRecorder flight;
    EXPECT_FALSE(flight.armed());
    flight.push(instant_at(1, 0));
    EXPECT_EQ(flight.total_recorded(), 0u);
    EXPECT_EQ(flight.dump("nothing"), 0u);
    EXPECT_EQ(flight.info().dumps, 0u);
}

TEST(Flight, RingKeepsOnlyTheLastDepthEventsPerCore) {
    obs::FlightRecorder flight;
    flight.arm(/*ncores=*/1, /*depth=*/4);
    for (sim::SimTime t = 0; t < 10; ++t) flight.push(instant_at(t, 0));

    EXPECT_EQ(flight.total_recorded(), 10u);
    const auto snap = flight.snapshot();
    ASSERT_EQ(snap.size(), 4u);  // overwrite, not growth
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].start, 6u + i);  // the newest 4, time-ordered
    }
}

TEST(Flight, SnapshotMergesCoresInTimeOrder) {
    obs::FlightRecorder flight;
    flight.arm(/*ncores=*/2, /*depth=*/8);
    flight.push(instant_at(30, 1));
    flight.push(instant_at(10, 0));
    flight.push(instant_at(20, 1));
    flight.push(instant_at(5, -1));  // sourceless (check) ring

    const auto snap = flight.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    for (std::size_t i = 1; i < snap.size(); ++i) {
        EXPECT_GE(snap[i].start, snap[i - 1].start);
    }
    EXPECT_EQ(snap.front().core, -1);
}

TEST(Flight, DumpWritesFlatJsonAndPerfettoTrace) {
    obs::FlightRecorder flight;
    flight.arm(/*ncores=*/2, /*depth=*/8);
    flight.set_dump_sink(sim::ClockSpec{1'000'000'000},
                         ::testing::TempDir() + "obs-flight");
    for (sim::SimTime t = 0; t < 5; ++t) flight.push(instant_at(t, 0));

    EXPECT_EQ(flight.dump("unit-test"), 5u);
    const auto& info = flight.info();
    EXPECT_EQ(info.dumps, 1u);
    EXPECT_EQ(info.last_reason, "unit-test");
    EXPECT_EQ(info.last_events, 5u);
    EXPECT_EQ(info.last_snapshot.size(), 5u);
    ASSERT_FALSE(info.last_path.empty());

    std::ifstream flat(info.last_path);
    ASSERT_TRUE(flat.is_open()) << info.last_path;
    std::stringstream buf;
    buf << flat.rdbuf();
    EXPECT_TRUE(JsonChecker(buf.str()).valid()) << buf.str();
    EXPECT_NE(buf.str().find("\"reason\":\"unit-test\""), std::string::npos);
    EXPECT_NE(buf.str().find("\"total_recorded\":5"), std::string::npos);

    const std::string trace_path =
        info.last_path.substr(0, info.last_path.size() - 5) + ".trace.json";
    std::ifstream trace(trace_path);
    ASSERT_TRUE(trace.is_open()) << trace_path;
    std::stringstream tbuf;
    tbuf << trace.rdbuf();
    EXPECT_TRUE(JsonChecker(tbuf.str()).valid());
    EXPECT_NE(tbuf.str().find("flight-unit-test"), std::string::npos);

    std::remove(info.last_path.c_str());
    std::remove(trace_path.c_str());
}

// ISSUE 6 acceptance: a strict-audit violation auto-dumps the flight
// recorder before the CheckViolation propagates, so the post-mortem
// context exists even though the run is about to die.
TEST(ObsIntegration, StrictViolationDumpsFlightRecorder) {
    core::NodeConfig cfg =
        core::Harness::default_config(core::SchedulerKind::kKittenPrimary, 11);
    cfg.check_mode = check::Mode::kStrict;
    cfg.platform.flight_depth = 64;
    cfg.platform.flight_dump_prefix = ::testing::TempDir() + "obs-violation";
    core::Node node(std::move(cfg));
    node.boot();
    node.run_for(0.05);
    ASSERT_NE(node.auditor(), nullptr);
    ASSERT_TRUE(node.platform().flight().armed());

    check::inject_corruption(*node.spm(),
                             check::CorruptionKind::kRogueStage2Map);
    EXPECT_THROW(node.auditor()->validate(), check::CheckViolation);

    const auto& info = node.platform().flight().info();
    EXPECT_GE(info.dumps, 1u);
    EXPECT_EQ(info.last_reason, "check-violation");
    EXPECT_GT(info.last_events, 0u);
    ASSERT_FALSE(info.last_path.empty());

    std::ifstream flat(info.last_path);
    ASSERT_TRUE(flat.is_open()) << info.last_path;
    std::stringstream buf;
    buf << flat.rdbuf();
    EXPECT_TRUE(JsonChecker(buf.str()).valid());
    EXPECT_NE(buf.str().find("\"reason\":\"check-violation\""),
              std::string::npos);

    std::remove(info.last_path.c_str());
    const std::string trace_path =
        info.last_path.substr(0, info.last_path.size() - 5) + ".trace.json";
    std::remove(trace_path.c_str());
}

TEST(TraceExport, MultiProcessDistinctPids) {
    obs::SpanRecorder rec;
    rec.set_mask(obs::to_mask(obs::Category::kAll));
    rec.span(0, 100, obs::EventType::kVmRun, 0, 1, 0, 0);

    obs::TraceExporter exporter(sim::ClockSpec{1'000'000'000});
    exporter.add_process(0, "native", 1, rec.events());
    exporter.add_process(1, "kitten", 1, rec.events());
    std::ostringstream os;
    exporter.write(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid());
    EXPECT_NE(os.str().find("\"pid\":0"), std::string::npos);
    EXPECT_NE(os.str().find("\"pid\":1"), std::string::npos);
}

// --- Perfetto round trip through a DOM parse ---------------------------------

/// Tiny DOM JSON value: enough structure to round-trip the exporter's
/// output and assert on it, rather than grepping substrings.
struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;  ///< source order

    [[nodiscard]] const JsonValue* get(const std::string& key) const {
        for (const auto& [k, v] : fields) {
            if (k == key) return &v;
        }
        return nullptr;
    }
    [[nodiscard]] double num(const std::string& key, double fallback) const {
        const JsonValue* v = get(key);
        return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
    }
    [[nodiscard]] std::string str(const std::string& key) const {
        const JsonValue* v = get(key);
        return v != nullptr && v->kind == Kind::kString ? v->text : "";
    }
};

class JsonDom {
public:
    explicit JsonDom(const std::string& text) : s_(text) {}

    bool parse(JsonValue& out) {
        skip_ws();
        if (!value(out)) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    bool value(JsonValue& out) {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object(out);
            case '[': return array(out);
            case '"': out.kind = JsonValue::Kind::kString; return string(out.text);
            case 't': out.kind = JsonValue::Kind::kBool; out.boolean = true;
                      return literal("true");
            case 'f': out.kind = JsonValue::Kind::kBool; return literal("false");
            case 'n': return literal("null");
            default: return number(out);
        }
    }
    bool object(JsonValue& out) {
        out.kind = JsonValue::Kind::kObject;
        ++pos_;
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skip_ws();
            std::string key;
            if (!string(key)) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            JsonValue v;
            if (!value(v)) return false;
            out.fields.emplace_back(std::move(key), std::move(v));
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }
    bool array(JsonValue& out) {
        out.kind = JsonValue::Kind::kArray;
        ++pos_;
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skip_ws();
            JsonValue v;
            if (!value(v)) return false;
            out.items.push_back(std::move(v));
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }
    bool string(std::string& out) {
        if (peek() != '"') return false;
        ++pos_;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
            out.push_back(s_[pos_++]);
        }
        if (pos_ >= s_.size()) return false;
        ++pos_;
        return true;
    }
    bool number(JsonValue& out) {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) return false;
        out.kind = JsonValue::Kind::kNumber;
        out.number = std::atof(s_.c_str() + start);
        return true;
    }
    bool literal(const char* lit) {
        const std::string l(lit);
        if (s_.compare(pos_, l.size(), l) != 0) return false;
        pos_ += l.size();
        return true;
    }
    void skip_ws() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
            ++pos_;
        }
    }
    [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    const std::string& s_;
    std::size_t pos_ = 0;
};

// Satellite 3: full DOM round trip. The exported trace must carry the
// process/thread/track structure Perfetto's importer keys on — process_name
// and per-core thread_name metadata, counter tracks with numeric values,
// and non-decreasing timestamps within every (pid, tid) lane.
TEST(TraceExport, PerfettoRoundTripPreservesStructureAndOrder) {
    obs::SpanRecorder rec;
    rec.set_mask(obs::to_mask(obs::Category::kAll));
    rec.span(100, 250, obs::EventType::kVmRun, 0, 1, 0, 0);
    rec.instant(300, obs::EventType::kHypercall, 0, 4, 1);
    rec.span(120, 200, obs::EventType::kVmRun, 1, 2, 0, 1);
    rec.instant(400, obs::EventType::kIrqDeliver, 1, 27);

    obs::TraceExporter exporter(sim::ClockSpec{1'000'000'000});
    exporter.add_process(0, "kitten-node", 2, rec.events());
    exporter.add_counter_tracks(
        0, {{"prof.world-switch", {{100, 2600.0}, {300, 5200.0}}}});

    std::ostringstream os;
    exporter.write(os);

    JsonValue root;
    ASSERT_TRUE(JsonDom(os.str()).parse(root)) << os.str();
    const JsonValue* events = root.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

    std::string process_name;
    std::map<int, std::string> thread_names;
    std::map<std::pair<int, int>, double> last_ts;  // (pid, tid) lanes
    std::vector<double> counter_values;
    std::size_t spans = 0;
    std::size_t instants = 0;

    for (const JsonValue& e : events->items) {
        ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
        const std::string ph = e.str("ph");
        ASSERT_FALSE(ph.empty());
        if (ph == "M") {
            if (e.str("name") == "process_name") {
                const JsonValue* args = e.get("args");
                ASSERT_NE(args, nullptr);
                process_name = args->str("name");
            }
            if (e.str("name") == "thread_name") {
                const JsonValue* args = e.get("args");
                ASSERT_NE(args, nullptr);
                thread_names[static_cast<int>(e.num("tid", -1))] =
                    args->str("name");
            }
            continue;
        }
        if (ph == "C") {
            const JsonValue* args = e.get("args");
            ASSERT_NE(args, nullptr);
            if (e.str("name") == "prof.world-switch") {
                const JsonValue* v = args->get("value");
                ASSERT_NE(v, nullptr);
                ASSERT_EQ(v->kind, JsonValue::Kind::kNumber);
                counter_values.push_back(v->number);
            }
            continue;
        }
        // Span/instant lanes: ts never goes backwards within a lane.
        const auto pid = static_cast<int>(e.num("pid", -1));
        const auto tid = static_cast<int>(e.num("tid", -1));
        const double ts = e.num("ts", -1.0);
        ASSERT_GE(pid, 0);
        ASSERT_GE(tid, 0);
        ASSERT_GE(ts, 0.0);
        const auto lane = std::make_pair(pid, tid);
        if (last_ts.count(lane) != 0) {
            EXPECT_GE(ts, last_ts[lane]);
        }
        last_ts[lane] = ts;
        if (ph == "X") {
            ++spans;
            EXPECT_GE(e.num("dur", -1.0), 0.0);
        } else if (ph == "i") {
            ++instants;
        }
    }

    EXPECT_EQ(process_name, "kitten-node");
    ASSERT_EQ(thread_names.size(), 2u);
    EXPECT_EQ(thread_names[0], "core 0");
    EXPECT_EQ(thread_names[1], "core 1");
    EXPECT_EQ(spans, 2u);
    EXPECT_EQ(instants, 2u);
    ASSERT_EQ(counter_values.size(), 2u);
    EXPECT_DOUBLE_EQ(counter_values[0], 2600.0);
    EXPECT_DOUBLE_EQ(counter_values[1], 5200.0);
    // Both counter samples and both cores produced lanes under pid 0.
    EXPECT_GE(last_ts.size(), 2u);
}

// The profiler's sampled counter tracks survive a node-level export: run a
// profiled workload, attach "prof.<path>" tracks from the samples, and
// confirm the DOM sees them as numeric counter events.
TEST(TraceExport, ProfilerCounterTracksExportAsCounters) {
    core::NodeConfig cfg = observed_config(core::SchedulerKind::kKittenPrimary);
    cfg.platform.profile = true;
    core::Node node(std::move(cfg));
    node.boot();  // boot creates the platform (and with it the profiler)
    node.platform().profiler().set_sample_period(16);  // tiny run: sample often
    run_tiny_workload(node);

    const obs::CycleProfiler& prof = node.platform().profiler();
    ASSERT_TRUE(prof.enabled());
    ASSERT_GT(prof.total_cycles(), 0u);
    ASSERT_FALSE(prof.samples().empty());

    std::vector<obs::TraceExporter::CounterTrack> tracks;
    for (std::size_t p = 0; p < obs::kProfPathCount; ++p) {
        obs::TraceExporter::CounterTrack track;
        track.name = std::string("prof.") +
                     obs::to_string(static_cast<obs::ProfPath>(p));
        for (const auto& s : prof.samples()) {
            track.samples.emplace_back(s.when,
                                       static_cast<double>(s.cycles[p]));
        }
        tracks.push_back(std::move(track));
    }

    obs::TraceExporter exporter(node.platform().engine().clock());
    exporter.add_process(0, "kitten", node.platform().ncores(),
                         node.platform().recorder().events());
    exporter.add_counter_tracks(0, std::move(tracks));
    std::ostringstream os;
    exporter.write(os);

    JsonValue root;
    ASSERT_TRUE(JsonDom(os.str()).parse(root));
    std::size_t prof_counters = 0;
    for (const JsonValue& e : root.get("traceEvents")->items) {
        if (e.str("ph") != "C") continue;
        if (e.str("name").rfind("prof.", 0) != 0) continue;
        const JsonValue* args = e.get("args");
        ASSERT_NE(args, nullptr);
        ASSERT_NE(args->get("value"), nullptr);
        EXPECT_EQ(args->get("value")->kind, JsonValue::Kind::kNumber);
        ++prof_counters;
    }
    EXPECT_EQ(prof_counters,
              prof.samples().size() * obs::kProfPathCount);
}

}  // namespace
}  // namespace hpcsec
