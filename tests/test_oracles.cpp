// Oracle tests: drive a component with random operation sequences and
// cross-check every observable against a simple reference implementation.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "arch/tlb.h"
#include "kitten/buddy.h"
#include "linux_fwk/cfs.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace hpcsec {
namespace {

// --- EventQueue vs. multimap reference -------------------------------------------

class EventQueueOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueOracle, MatchesReferenceOrdering) {
    sim::Rng rng(GetParam());
    sim::EventQueue q;
    // Reference: ordered by (time, priority, seq).
    std::map<std::tuple<sim::SimTime, int, std::uint64_t>, int> ref;
    std::map<std::uint64_t, std::tuple<sim::SimTime, int, std::uint64_t>> by_seq;
    std::vector<int> fired;
    int next_payload = 0;
    std::uint64_t seq = 0;

    for (int step = 0; step < 2000; ++step) {
        const double dice = rng.next_double();
        if (dice < 0.55) {
            const sim::SimTime when = rng.next_below(1000);
            const int prio = static_cast<int>(rng.next_below(3)) * 10;
            const int payload = next_payload++;
            const sim::EventId id =
                q.schedule(when, prio, [payload, &fired] { fired.push_back(payload); });
            ref[{when, prio, ++seq}] = payload;
            by_seq[id.seq] = {when, prio, seq};
        } else if (dice < 0.75 && !by_seq.empty()) {
            // Cancel a random still-tracked event.
            auto it = by_seq.begin();
            std::advance(it, static_cast<long>(rng.next_below(by_seq.size())));
            const bool cancelled = q.cancel(sim::EventId{it->first});
            const bool in_ref = ref.erase(it->second) > 0;
            EXPECT_EQ(cancelled, in_ref);
            by_seq.erase(it);
        } else if (!q.empty()) {
            // Pop one; reference pops its minimum.
            fired.clear();
            q.pop().fn();
            ASSERT_FALSE(ref.empty());
            EXPECT_EQ(fired.size(), 1u);
            EXPECT_EQ(fired[0], ref.begin()->second);
            ref.erase(ref.begin());
        }
        EXPECT_EQ(q.size(), ref.size());
        EXPECT_EQ(q.empty() ? sim::kTimeNever : q.next_time(),
                  ref.empty() ? sim::kTimeNever : std::get<0>(ref.begin()->first));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOracle, ::testing::Values(1, 2, 3, 4));

// --- TLB vs. map reference ----------------------------------------------------------

class TlbOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TlbOracle, LookupNeverReturnsStaleOrForeignEntries) {
    sim::Rng rng(GetParam() ^ 0x71b);
    arch::Tlb tlb(64, 4);
    // Reference: latest inserted mapping per (vmid, asid, page). The TLB may
    // evict (miss where the reference hits) but must never return a value
    // that differs from the reference (no stale/foreign hits).
    std::map<std::tuple<arch::VmId, arch::Asid, std::uint64_t>, std::uint64_t> ref;

    for (int step = 0; step < 5000; ++step) {
        const auto vmid = static_cast<arch::VmId>(1 + rng.next_below(3));
        const auto asid = static_cast<arch::Asid>(rng.next_below(2));
        const std::uint64_t page = rng.next_below(256);
        const double dice = rng.next_double();
        if (dice < 0.45) {
            const std::uint64_t out = rng.next_u64() & 0xffffff;
            tlb.insert({true, vmid, asid, page, out, arch::kPermRW, false});
            ref[{vmid, asid, page}] = out;
        } else if (dice < 0.85) {
            const arch::TlbEntry* e = tlb.lookup(vmid, asid, page);
            if (e != nullptr) {
                const auto it = ref.find({vmid, asid, page});
                ASSERT_NE(it, ref.end()) << "hit for a never-inserted mapping";
                EXPECT_EQ(e->out_page, it->second) << "stale TLB entry";
            }
        } else if (dice < 0.93) {
            tlb.flush_vmid(vmid);
            for (auto it = ref.begin(); it != ref.end();) {
                it = std::get<0>(it->first) == vmid ? ref.erase(it) : std::next(it);
            }
        } else if (dice < 0.97) {
            tlb.flush_page(vmid, page);
            ref.erase({vmid, asid, page});
            // flush_page drops all asids for that (vmid,page) in the model's
            // semantics; mirror that.
            for (auto it = ref.begin(); it != ref.end();) {
                const auto& [v, a, p] = it->first;
                it = (v == vmid && p == page) ? ref.erase(it) : std::next(it);
            }
        } else {
            tlb.flush_all();
            ref.clear();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlbOracle, ::testing::Values(5, 6, 7, 8));

// --- Buddy vs. interval reference ------------------------------------------------------

class BuddyOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyOracle, NoOverlapNoLeakAlignedAlways) {
    sim::Rng rng(GetParam() ^ 0xb0d);
    kitten::BuddyAllocator buddy(1 << 18, 4096);
    std::map<std::uint64_t, std::uint64_t> live;  // offset -> rounded size
    std::uint64_t live_bytes = 0;

    for (int step = 0; step < 3000; ++step) {
        if (live.empty() || rng.next_double() < 0.5) {
            const std::uint64_t want = 1 + rng.next_below(40000);
            std::uint64_t rounded = 4096;
            while (rounded < want) rounded <<= 1;
            const auto off = buddy.alloc(want);
            if (live_bytes + rounded <= (1 << 18)) {
                // Note: fragmentation may still legitimately fail this
                // alloc; only verify properties when it succeeds.
            }
            if (off.has_value()) {
                EXPECT_EQ(*off % rounded, 0u) << "buddy block misaligned";
                for (const auto& [o, s] : live) {
                    EXPECT_TRUE(*off + rounded <= o || o + s <= *off)
                        << "overlapping allocation";
                }
                live[*off] = rounded;
                live_bytes += rounded;
            }
        } else {
            auto it = live.begin();
            std::advance(it, static_cast<long>(rng.next_below(live.size())));
            buddy.free(it->first);
            live_bytes -= it->second;
            live.erase(it);
        }
        EXPECT_EQ(buddy.allocated_bytes(), live_bytes);
    }
    // Free everything: the pool must coalesce back to one block.
    for (const auto& [o, s] : live) buddy.free(o);
    EXPECT_EQ(buddy.largest_free_block(), 1u << 18);
    EXPECT_EQ(buddy.fragments(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyOracle, ::testing::Values(9, 10, 11));

// --- CFS long-run fairness --------------------------------------------------------------

class CfsFairness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CfsFairness, RuntimeSharesTrackWeights) {
    sim::Rng rng(GetParam() ^ 0xcf5);
    linux_fwk::CfsRunqueue rq;
    constexpr int kTasks = 4;
    linux_fwk::SchedEntity tasks[kTasks];
    double runtime[kTasks] = {};
    int weights[kTasks];
    for (int i = 0; i < kTasks; ++i) {
        tasks[i].name = "t" + std::to_string(i);
        weights[i] = 512 << rng.next_below(3);  // 512/1024/2048
        tasks[i].weight = weights[i];
        rq.enqueue(tasks[i], false);
    }
    // Simulate 100k scheduling slices of 1000 cycles each.
    for (int slice = 0; slice < 100000; ++slice) {
        linux_fwk::SchedEntity* se = rq.pick_next();
        ASSERT_NE(se, nullptr);
        rq.update_curr(*se, 1000.0);
        const int idx = se->name[1] - '0';
        runtime[idx] += 1000.0;
        rq.put_prev(*se);
    }
    double total_weight = 0, total_runtime = 0;
    for (int i = 0; i < kTasks; ++i) {
        total_weight += weights[i];
        total_runtime += runtime[i];
    }
    for (int i = 0; i < kTasks; ++i) {
        const double expected = weights[i] / total_weight;
        const double actual = runtime[i] / total_runtime;
        EXPECT_NEAR(actual, expected, 0.02)
            << "task " << i << " weight " << weights[i];
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfsFairness, ::testing::Values(12, 13, 14, 15));

}  // namespace
}  // namespace hpcsec
