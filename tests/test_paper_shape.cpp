// Paper-shape regression tests: the qualitative claims of the evaluation
// section must keep holding as the model evolves. Each test names the
// figure it guards. Scaled-down workloads keep the suite fast; the bench
// binaries run the full-size versions.
#include <gtest/gtest.h>

#include "core/harness.h"
#include "workloads/hpcg.h"
#include "workloads/nas.h"
#include "workloads/randomaccess.h"
#include "workloads/stream.h"

namespace hpcsec::core {
namespace {

Harness make_harness(int trials = 3) {
    Harness::Options opt;
    opt.trials = trials;
    return Harness(opt);
}

wl::WorkloadSpec shrink(wl::WorkloadSpec s, double factor) {
    s.units_per_thread_step /= factor;
    return s;
}

TEST(PaperShape, Fig4NativeNoiseIsSparseAndSmall) {
    const auto native = run_selfish_experiment(SchedulerKind::kNativeKitten, 5.0, 1);
    // 10 Hz tick per core: ~50 detours on the plotted core over 5 s.
    EXPECT_NEAR(static_cast<double>(native.detours.size()), 50.0, 15.0);
    // "constrained noise profile": everything stays in the microsecond band.
    EXPECT_LT(native.max_detour_us, 10.0);
}

TEST(PaperShape, Fig5KittenSchedulerAddsLittleNoise) {
    const auto native = run_selfish_experiment(SchedulerKind::kNativeKitten, 5.0, 1);
    const auto kitten = run_selfish_experiment(SchedulerKind::kKittenPrimary, 5.0, 1);
    // "adding a virtualization layer causes little to no change to noise
    // profile … The only difference is a slight increase in detour
    // latencies when they do occur."
    EXPECT_LT(kitten.detours.size(), native.detours.size() * 3);
    EXPECT_GT(kitten.max_detour_us, native.max_detour_us);
    EXPECT_LT(kitten.max_detour_us, 40.0);
}

TEST(PaperShape, Fig6LinuxSchedulerIsNoisy) {
    const auto kitten = run_selfish_experiment(SchedulerKind::kKittenPrimary, 5.0, 1);
    const auto linux_cfg = run_selfish_experiment(SchedulerKind::kLinuxPrimary, 5.0, 1);
    // "noise events are more frequent and more randomly distributed".
    EXPECT_GT(linux_cfg.detours.size(), kitten.detours.size() * 10);
    EXPECT_GT(linux_cfg.max_detour_us, 100.0);  // kworker bursts
}

TEST(PaperShape, Fig7RandomAccessMostVirtualizationSensitive) {
    Harness h = make_harness();
    const auto ra = h.run_row(shrink(wl::randomaccess_spec(), 8));
    const auto stream = h.run_row(shrink(wl::stream_spec(), 8));
    const double ra_kitten = ra.cells[1].mean / ra.cells[0].mean;
    const double stream_kitten = stream.cells[1].mean / stream.cells[0].mean;
    // RandomAccess degrades by roughly the paper's ~4.6%; Stream is flat.
    EXPECT_LT(ra_kitten, 0.97);
    EXPECT_GT(ra_kitten, 0.90);
    EXPECT_NEAR(stream_kitten, 1.0, 0.01);
}

TEST(PaperShape, Fig7LinuxWorstOnRandomAccess) {
    Harness h = make_harness();
    const auto ra = h.run_row(shrink(wl::randomaccess_spec(), 8));
    EXPECT_LT(ra.cells[2].mean, ra.cells[1].mean);  // Linux < Kitten
    const double ra_linux = ra.cells[2].mean / ra.cells[0].mean;
    EXPECT_LT(ra_linux, 0.96);
    EXPECT_GT(ra_linux, 0.88);
}

TEST(PaperShape, Fig8HpcgWithinNoiseAcrossConfigs) {
    Harness h = make_harness(4);
    const auto row = h.run_row(shrink(wl::hpcg_spec(), 4));
    // "the mean performance of each configuration falls within [a few]
    // standard deviation[s]" — Kitten vs native is statistically flat.
    const double spread = std::abs(row.cells[1].mean - row.cells[0].mean);
    EXPECT_LT(spread, 3.0 * (row.cells[0].stdev + row.cells[1].stdev + 1e-12));
}

TEST(PaperShape, Fig9KittenMatchesNativeAcrossNas) {
    Harness h = make_harness(2);
    for (const auto& spec : wl::nas_suite()) {
        const auto row = h.run_row(shrink(spec, 8));
        const double norm = row.cells[1].mean / row.cells[0].mean;
        EXPECT_NEAR(norm, 1.0, 0.015) << spec.name;
    }
}

TEST(PaperShape, Fig10LinuxHurtsLuMost) {
    Harness h = make_harness(2);
    const auto lu = h.run_row(shrink(wl::nas_lu_spec(), 4));
    const auto ep = h.run_row(shrink(wl::nas_ep_spec(), 4));
    const double lu_linux = lu.cells[2].mean / lu.cells[0].mean;
    const double ep_linux = ep.cells[2].mean / ep.cells[0].mean;
    EXPECT_LT(lu_linux, 1.0);
    // LU (fine-grained sync) suffers more than EP (no sync).
    EXPECT_LT(lu_linux, ep_linux);
}

TEST(PaperShape, VirtualizationOverheadScalesWithTlbPressure) {
    // The mechanism behind Fig. 7: two-stage translation hurts in proportion
    // to TLB miss traffic.
    Harness::Options opt;
    opt.trials = 1;
    opt.measurement_noise = false;
    Harness h(opt);
    wl::WorkloadSpec light = shrink(wl::nas_ep_spec(), 4);    // ~no misses
    wl::WorkloadSpec heavy = shrink(wl::randomaccess_spec(), 8);  // all misses
    const double light_ratio =
        h.run_trial(SchedulerKind::kKittenPrimary, light, 3).score /
        h.run_trial(SchedulerKind::kNativeKitten, light, 3).score;
    const double heavy_ratio =
        h.run_trial(SchedulerKind::kKittenPrimary, heavy, 3).score /
        h.run_trial(SchedulerKind::kNativeKitten, heavy, 3).score;
    EXPECT_GT(light_ratio, heavy_ratio + 0.02);
}

}  // namespace
}  // namespace hpcsec::core
