// Parallel experiment engine: fanning trials across worker threads must be
// invisible in the results. Every aggregate the harness reports — cell
// stats, merged metrics, formatted tables — must be bit-identical between
// --jobs 1 (the legacy serial loop) and any other jobs value, because the
// parallel path gives each trial a private Node and replays the merge in
// exact serial order. Also covers the ThreadPool primitive itself.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/harness.h"
#include "core/node.h"
#include "core/parallel.h"
#include "workloads/nas.h"
#include "workloads/randomaccess.h"

namespace hpcsec::core {
namespace {

wl::WorkloadSpec small_spec() {
    wl::WorkloadSpec spec = wl::nas_cg_spec();
    spec.units_per_thread_step /= 10;
    return spec;
}

Harness::Options base_options(int jobs) {
    Harness::Options opt;
    opt.trials = 4;
    opt.jobs = jobs;
    return opt;
}

void expect_rows_bit_identical(const std::vector<ExperimentRow>& a,
                               const std::vector<ExperimentRow>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) {
        EXPECT_EQ(a[r].workload, b[r].workload);
        EXPECT_EQ(a[r].metric, b[r].metric);
        for (std::size_t c = 0; c < a[r].cells.size(); ++c) {
            // Bitwise, not EXPECT_DOUBLE_EQ: the merge replays the exact
            // serial accumulation order, so even the rounding must match.
            EXPECT_EQ(std::memcmp(&a[r].cells[c], &b[r].cells[c],
                                  sizeof(CellStats)),
                      0)
                << "row " << r << " cell " << c;
        }
    }
    EXPECT_EQ(Harness::format_raw(a), Harness::format_raw(b));
    EXPECT_EQ(Harness::format_normalized(a), Harness::format_normalized(b));
    EXPECT_EQ(Harness::format_metrics_json(a), Harness::format_metrics_json(b));
}

TEST(ParallelHarness, RowsBitIdenticalAcrossJobs) {
    const std::vector<wl::WorkloadSpec> specs = {small_spec()};
    Harness serial(base_options(1));
    Harness wide(base_options(8));
    expect_rows_bit_identical(serial.run_rows(specs), wide.run_rows(specs));
}

TEST(ParallelHarness, RunTrialsPreservesSeedOrderAndValues) {
    const wl::WorkloadSpec spec = small_spec();
    const std::vector<std::uint64_t> seeds = {11, 7, 300, 7};  // dup + unsorted
    Harness serial(base_options(1));
    Harness wide(base_options(8));
    const auto a = serial.run_trials(SchedulerKind::kLinuxPrimary, spec, seeds);
    const auto b = wide.run_trials(SchedulerKind::kLinuxPrimary, spec, seeds);
    ASSERT_EQ(a.size(), seeds.size());
    ASSERT_EQ(b.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        EXPECT_EQ(a[i].seconds, b[i].seconds) << "trial " << i;
        EXPECT_EQ(a[i].score, b[i].score) << "trial " << i;
    }
    // Equal seeds must reproduce equal trials regardless of which worker
    // thread ran them.
    EXPECT_EQ(b[1].seconds, b[3].seconds);
    EXPECT_EQ(b[1].score, b[3].score);
}

TEST(ParallelHarness, MetricsAggregatesMatchAcrossJobs) {
    const std::vector<wl::WorkloadSpec> specs = {small_spec()};
    Harness serial(base_options(1));
    Harness wide(base_options(8));
    const auto a = serial.run_rows(specs);
    const auto b = wide.run_rows(specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < a[0].metrics.size(); ++c) {
        const auto& ra = a[0].metrics[c].rows();
        const auto& rb = b[0].metrics[c].rows();
        ASSERT_EQ(ra.size(), rb.size()) << "config " << c;
        for (std::size_t m = 0; m < ra.size(); ++m) {
            EXPECT_EQ(ra[m].name, rb[m].name);
            EXPECT_EQ(ra[m].stats.count(), rb[m].stats.count());
            EXPECT_EQ(ra[m].stats.mean(), rb[m].stats.mean()) << ra[m].name;
            EXPECT_EQ(ra[m].stats.stddev(), rb[m].stats.stddev()) << ra[m].name;
        }
    }
}

// ISSUE 6 acceptance: windowed aggregation rides the streaming in-order
// merge, so window boundaries, contents, and the JSON rendering must be
// bit-identical at every --jobs value.
TEST(ParallelHarness, WindowedMetricsBitIdenticalAcrossJobs) {
    const std::vector<wl::WorkloadSpec> specs = {small_spec()};
    Harness::Options serial_opt = base_options(1);
    serial_opt.obs_window = 2;
    Harness::Options wide_opt = base_options(8);
    wide_opt.obs_window = 2;
    Harness serial(serial_opt);
    Harness wide(wide_opt);
    const auto a = serial.run_rows(specs);
    const auto b = wide.run_rows(specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < a[0].metrics.size(); ++c) {
        const auto& wa = a[0].metrics[c].windows();
        const auto& wb = b[0].metrics[c].windows();
        ASSERT_EQ(wa.size(), 2u) << "config " << c;  // 4 trials / window 2
        ASSERT_EQ(wa.size(), wb.size()) << "config " << c;
        for (std::size_t w = 0; w < wa.size(); ++w) {
            EXPECT_EQ(wa[w].index, wb[w].index);
            EXPECT_EQ(wa[w].first_trial, wb[w].first_trial);
            EXPECT_EQ(wa[w].trials, wb[w].trials);
            ASSERT_EQ(wa[w].rows.size(), wb[w].rows.size());
            for (std::size_t m = 0; m < wa[w].rows.size(); ++m) {
                EXPECT_EQ(wa[w].rows[m].name, wb[w].rows[m].name);
                EXPECT_EQ(wa[w].rows[m].stats.count(),
                          wb[w].rows[m].stats.count());
                // Bitwise equality, as in expect_rows_bit_identical: the
                // merge replays the exact serial add order.
                EXPECT_EQ(wa[w].rows[m].stats.mean(),
                          wb[w].rows[m].stats.mean())
                    << wa[w].rows[m].name;
                EXPECT_EQ(wa[w].rows[m].stats.stddev(),
                          wb[w].rows[m].stats.stddev())
                    << wa[w].rows[m].name;
            }
        }
    }
    EXPECT_EQ(Harness::format_metrics_json(a), Harness::format_metrics_json(b));
}

TEST(ParallelHarness, CallbacksSerializedAndOrdered) {
    // pre_trial/post_trial run under the harness callback mutex; the overlap
    // counter would exceed 1 if two workers entered simultaneously.
    std::atomic<int> in_callback{0};
    std::atomic<int> max_overlap{0};
    std::atomic<int> calls{0};
    Harness::Options opt = base_options(8);
    opt.post_trial = [&](SchedulerKind, std::uint64_t, Node&) {
        const int now = ++in_callback;
        int prev = max_overlap.load();
        while (now > prev && !max_overlap.compare_exchange_weak(prev, now)) {
        }
        ++calls;
        --in_callback;
    };
    Harness h(opt);
    h.run_rows({small_spec()});
    EXPECT_EQ(calls.load(), 3 * opt.trials);
    EXPECT_EQ(max_overlap.load(), 1);
}

TEST(ParallelHarness, SelfishExperimentsMatchSerial) {
    std::vector<SelfishJob> jobs;
    for (const auto kind : kAllConfigs) jobs.push_back({kind, 1.0, 77, {}});
    const auto par = run_selfish_experiments(jobs, 8);
    ASSERT_EQ(par.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto ser = run_selfish_experiment(jobs[i].kind, 1.0, 77);
        EXPECT_EQ(par[i].detours_all_cores, ser.detours_all_cores);
        EXPECT_EQ(par[i].total_detour_us_all, ser.total_detour_us_all);
        EXPECT_EQ(par[i].max_detour_us, ser.max_detour_us);
        ASSERT_EQ(par[i].detours.size(), ser.detours.size());
        for (std::size_t d = 0; d < ser.detours.size(); ++d) {
            EXPECT_EQ(par[i].detours[d].at_seconds, ser.detours[d].at_seconds);
            EXPECT_EQ(par[i].detours[d].duration_us, ser.detours[d].duration_us);
        }
    }
}

TEST(ThreadPool, RunsAllIndicesOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    parallel_for_indexed(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, PropagatesLowestIndexException) {
    ThreadPool pool(4);
    try {
        parallel_for_indexed(pool, 64, [&](std::size_t i) {
            if (i % 10 == 3) throw std::runtime_error("boom@" + std::to_string(i));
        });
        FAIL() << "expected exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom@3");
    }
}

TEST(ThreadPool, ZeroTasksIsANoop) {
    ThreadPool pool(2);
    parallel_for_indexed(pool, 0, [&](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace hpcsec::core
