// Fault-tolerant VM lifecycle (src/resil/): heartbeat watchdog detection,
// quarantine-and-restart with deterministic backoff, job-channel
// timeout/retry hardening, and a chaos soak across every scheduler
// configuration — all under the strict isolation auditor.
#include <gtest/gtest.h>

#include <memory>

#include "check/check.h"
#include "core/harness.h"
#include "core/jobs.h"
#include "core/node.h"
#include "resil/chaos.h"
#include "resil/resil.h"
#include "workloads/randomaccess.h"
#include "workloads/workload.h"

namespace hpcsec {
namespace {

using core::Harness;
using core::Node;
using core::NodeConfig;
using core::SchedulerKind;

// Kills VCPU 0 of whichever live VM currently answers to `name`, every
// `period_s`, up to `shots` times. Restarted instances get a fresh id but
// keep the name, so the killer keeps finding the live incarnation.
struct RecurringKiller {
    Node& node;
    double period_s;
    int shots;

    void arm() {
        auto& eng = node.platform().engine();
        eng.at(eng.now() + eng.clock().from_seconds(period_s), [this] {
            if (hafnium::Vm* vm = node.spm()->find_vm("compute")) {
                hafnium::Vcpu& v = vm->vcpu(0);
                if (v.state() != hafnium::VcpuState::kAborted) {
                    node.spm()->abort_vcpu(v);
                }
            }
            if (--shots > 0) arm();
        });
    }
};

// --- satellite: guest-reachable throws became HfError returns ----------------

struct RunningFixture : ::testing::Test {
    Node node{Harness::default_config(SchedulerKind::kKittenPrimary, 31)};
    std::unique_ptr<wl::ParallelWorkload> work;

    void SetUp() override {
        node.boot();
        work = std::make_unique<wl::ParallelWorkload>(wl::spinner_spec(4));
        work->set_mode(arch::TranslationMode::kTwoStage);
        for (int i = 0; i < 4; ++i) {
            node.compute_guest()->set_thread(i, &work->thread(i));
        }
        node.compute_guest()->wake_runnable_vcpus();
        for (int i = 0; i < 4; ++i) {
            node.spm()->make_vcpu_ready(node.compute_vm()->vcpu(i));
            node.primary_os()->on_vcpu_wake(node.compute_vm()->vcpu(i));
        }
        node.run_for(0.1);
    }
};

TEST_F(RunningFixture, VcpuRunOnBusyCoreReturnsBusyNotThrow) {
    // A buggy primary driver with stale bookkeeping re-runs a VCPU whose
    // core is still mid-context. Hafnium must refuse, not bring down the
    // node. The probe fires from event context and retries until it
    // catches the core mid-chunk (exec().running() is only true there).
    auto& eng = node.platform().engine();
    bool hit = false;
    std::function<void()> probe = [this, &eng, &hit, &probe] {
        hafnium::Vcpu& v = node.compute_vm()->vcpu(1);
        const arch::CoreId core = v.running_core;
        if (core >= 0 && node.platform().core(core).exec().running() &&
            v.state() == hafnium::VcpuState::kRunning) {
            v.set_state(hafnium::VcpuState::kReady);
            const std::uint64_t before = node.spm()->stats().bad_state_calls;
            const hafnium::HfResult r = node.spm()->hypercall(
                core, arch::kPrimaryVmId, hafnium::Call::kVcpuRun,
                {node.compute_vm()->id(), 1, 0, 0});
            EXPECT_EQ(r.error, hafnium::HfError::kBusy);
            EXPECT_EQ(node.spm()->stats().bad_state_calls, before + 1);
            v.set_state(hafnium::VcpuState::kRunning);
            hit = true;
            return;
        }
        eng.at(eng.now() + eng.clock().from_seconds(1e-6), probe);
    };
    eng.at(eng.now() + eng.clock().from_seconds(1e-6), probe);
    node.run_for(0.5);
    EXPECT_TRUE(hit);
}

// --- watchdog detection ------------------------------------------------------

TEST_F(RunningFixture, WatchdogDetectsCrashAndRestarts) {
    resil::PolicyConfig pc;
    pc.backoff_base_s = 0.02;
    resil::Supervisor sup(node, pc);
    sup.supervise(node.compute_vm()->id());
    sup.start();

    const arch::VmId old_id = node.compute_vm()->id();
    node.spm()->abort_vcpu(node.compute_vm()->vcpu(0));
    node.run_for(1.0);

    EXPECT_EQ(sup.stats().crashes, 1u);
    EXPECT_EQ(sup.stats().restarts, 1u);
    EXPECT_EQ(sup.health_of("compute"), resil::VmHealth::kHealthy);
    // Restart allocated a fresh partition id; the old one stays retired.
    EXPECT_NE(sup.current_id("compute"), old_id);
    EXPECT_TRUE(node.spm()->vm(old_id).destroyed);
}

TEST_F(RunningFixture, WatchdogDetectsHungVcpu) {
    resil::PolicyConfig pc;
    pc.hang_timeout_s = 0.2;
    pc.backoff_base_s = 0.02;
    resil::Supervisor sup(node, pc);
    sup.supervise(node.compute_vm()->id());
    sup.start();
    // Let every VCPU beat under supervision first — hang detection only
    // covers VCPUs that have proven they tick.
    node.run_for(0.3);

    // A buggy guest cancels its own virtual timer: the VCPU keeps spinning
    // but heartbeats stop — the crash path never fires, only the hang path.
    hafnium::Vcpu& v = node.compute_vm()->vcpu(2);
    ASSERT_TRUE(v.vtimer_armed);
    node.spm()->hypercall(v.running_core, node.compute_vm()->id(),
                          hafnium::Call::kVtimerCancel,
                          {0, static_cast<std::uint64_t>(v.index()), 0, 0});
    node.run_for(2.0);

    EXPECT_GE(sup.stats().hangs, 1u);
    EXPECT_GE(sup.stats().restarts, 1u);
    EXPECT_EQ(sup.stats().crashes, 0u);
}

// --- restart policy ----------------------------------------------------------

TEST(RestartPolicy, BackoffScheduleIsSeedDeterministic) {
    auto run_once = [](std::uint64_t seed) {
        Node node(Harness::default_config(SchedulerKind::kKittenPrimary, seed));
        node.boot();
        resil::PolicyConfig pc;
        pc.restart_budget = 10;
        resil::Supervisor sup(node, pc);
        sup.supervise(node.compute_vm()->id());
        sup.start();
        RecurringKiller killer{node, 0.4, 6};
        killer.arm();
        node.run_for(4.0);
        EXPECT_GE(sup.backoff_log().size(), 3u);
        return sup.backoff_log();
    };
    const std::vector<double> a = run_once(77);
    const std::vector<double> b = run_once(77);
    const std::vector<double> c = run_once(78);
    EXPECT_EQ(a, b);  // same seed: bit-identical recovery schedule
    ASSERT_EQ(a.size(), c.size());
    EXPECT_NE(a, c);  // different seed: different jitter
    // Bounded exponential growth: each delay stays under the cap plus
    // jitter, and the base schedule grows until capped.
    for (double d : a) {
        EXPECT_GT(d, 0.0);
        EXPECT_LE(d, 2.0 * 1.1);
    }
}

TEST(RestartPolicy, QuarantineAfterBudgetLeavesNodeServing) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 41);
    cfg.with_super_secondary = true;
    Node node(cfg);
    node.boot();
    core::JobControl jobs(node);

    resil::PolicyConfig pc;
    pc.restart_budget = 2;
    pc.backoff_base_s = 0.02;
    resil::Supervisor sup(node, pc);
    sup.supervise(node.compute_vm()->id());
    sup.start();
    RecurringKiller killer{node, 0.3, 8};
    killer.arm();
    node.run_for(4.0);

    EXPECT_EQ(sup.stats().quarantines, 1u);
    EXPECT_EQ(sup.health_of("compute"), resil::VmHealth::kQuarantined);
    // Quarantine reclaims the partition: its memory and cores are back with
    // the hypervisor, and nothing answers to the name anymore.
    EXPECT_EQ(node.spm()->find_vm("compute"), nullptr);

    // Graceful degradation, not node death: the login VM's job channel to
    // the primary still works.
    core::JobCommand ping;
    ping.op = core::JobOp::kPing;
    const core::JobReply r = jobs.request_reliable(ping);
    EXPECT_EQ(r.status, 0);
    EXPECT_EQ(r.value, 0x706f6e67u);
}

// --- end-to-end recovery under strict audit ----------------------------------

TEST(Recovery, CrashedWorkloadCompletesAfterRestartUnderStrictCheck) {
    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, 51);
    cfg.check_mode = check::Mode::kStrict;
    Node node(cfg);
    node.boot();

    resil::PolicyConfig pc;
    pc.backoff_base_s = 0.02;
    resil::Supervisor sup(node, pc);
    sup.supervise(node.compute_vm()->id());
    sup.start();

    auto& eng = node.platform().engine();
    eng.at(eng.now() + eng.clock().from_seconds(0.2), [&node] {
        if (hafnium::Vm* vm = node.spm()->find_vm("compute")) {
            node.spm()->abort_vcpu(vm->vcpu(1));
        }
    });

    wl::ParallelWorkload work(wl::randomaccess_spec());
    const double seconds = node.run_workload(work, 120.0);
    EXPECT_GT(seconds, 0.0);
    EXPECT_EQ(sup.stats().crashes, 1u);
    EXPECT_EQ(sup.stats().restarts, 1u);
    ASSERT_NE(node.auditor(), nullptr);
    ASSERT_NO_THROW(node.auditor()->validate());
    EXPECT_TRUE(node.auditor()->failures().empty());
}

// --- job-channel hardening ---------------------------------------------------

struct JobChannelFixture : ::testing::Test {
    NodeConfig cfg = [] {
        NodeConfig c = Harness::default_config(SchedulerKind::kKittenPrimary, 61);
        c.with_super_secondary = true;
        return c;
    }();
    Node node{cfg};
    std::unique_ptr<core::JobControl> jobs;

    void SetUp() override {
        node.boot();
        jobs = std::make_unique<core::JobControl>(node);
    }

    static core::JobCommand ping() {
        core::JobCommand cmd;
        cmd.op = core::JobOp::kPing;
        return cmd;
    }
};

TEST_F(JobChannelFixture, LostRepliesTimeOutInsteadOfHanging) {
    // Black-hole the control task: commands arrive but nothing ever answers.
    jobs->control_ctx().handler = [](const core::JobCommand&) {};
    core::JobControl::RetryPolicy pol;
    pol.attempt_timeout_s = 0.01;
    pol.max_attempts = 2;
    const core::JobReply r = jobs->request_reliable(ping(), pol);
    EXPECT_EQ(r.status, core::kStatusTimeout);
    EXPECT_EQ(jobs->channel_stats().timeouts, 1u);
    EXPECT_EQ(jobs->channel_stats().retransmits, 1u);
    // Legacy API maps the same failure to nullopt.
    EXPECT_FALSE(jobs->request(ping(), 0.01).has_value());
}

TEST_F(JobChannelFixture, RetransmitRecoversFromDroppedCommand) {
    const auto orig = jobs->control_ctx().handler;
    int calls = 0;
    jobs->control_ctx().handler = [&calls, orig](const core::JobCommand& c) {
        if (calls++ == 0) return;  // first delivery vanishes
        orig(c);
    };
    core::JobControl::RetryPolicy pol;
    pol.attempt_timeout_s = 0.05;
    pol.max_attempts = 4;
    const core::JobReply r = jobs->request_reliable(ping(), pol);
    EXPECT_EQ(r.status, 0);
    EXPECT_EQ(r.value, 0x706f6e67u);
    EXPECT_GE(jobs->channel_stats().retransmits, 1u);
    EXPECT_GE(calls, 2);
}

TEST_F(JobChannelFixture, ReplayCacheAnswersDuplicateCommandsWithoutReexecution) {
    const auto orig = jobs->control_ctx().handler;
    jobs->control_ctx().handler = [orig](const core::JobCommand& c) {
        orig(c);
        orig(c);  // duplicate delivery of the same tag
    };
    const core::JobReply r = jobs->request_reliable(ping());
    EXPECT_EQ(r.status, 0);
    // The second execution hit the reply cache instead of re-running the
    // command.
    EXPECT_EQ(jobs->channel_stats().replayed_replies, 1u);
    EXPECT_EQ(jobs->commands_processed(), 1u);
}

TEST_F(JobChannelFixture, StaleRepliesAreSuppressed) {
    // Attempts expire long before the ~25k-cycle control task can answer,
    // so every reply to the first request arrives stale.
    core::JobControl::RetryPolicy pol;
    pol.attempt_timeout_s = 1e-6;
    pol.max_attempts = 2;
    const core::JobReply r1 = jobs->request_reliable(ping(), pol);
    EXPECT_EQ(r1.status, core::kStatusTimeout);
    // The next (patient) request pumps the stale replies through; they must
    // be dropped, and the fresh request must still succeed.
    const core::JobReply r2 = jobs->request_reliable(ping());
    EXPECT_EQ(r2.status, 0);
    EXPECT_GE(jobs->channel_stats().duplicate_replies, 1u);
}

// --- chaos soak --------------------------------------------------------------

TEST(ChaosSoak, AllConfigsSurviveFaultsWithZeroFindings) {
    for (const SchedulerKind kind : core::kAllConfigs) {
        Harness::Options hopt;
        hopt.trials = 1;
        hopt.base_seed = 71;
        hopt.timeout_s = 600.0;
        hopt.check_mode = check::Mode::kStrict;  // native: no SPM, audit off
        struct Rig {
            std::unique_ptr<resil::Supervisor> sup;
            std::unique_ptr<resil::ChaosInjector> chaos;
        };
        std::uint64_t injections = 0;
        hopt.pre_trial = [&injections](SchedulerKind, std::uint64_t,
                                       Node& n) -> std::shared_ptr<void> {
            auto rig = std::make_shared<Rig>();
            if (n.spm() != nullptr && n.compute_vm() != nullptr) {
                resil::PolicyConfig pc;
                pc.restart_budget = 1000;  // soak: recover forever, never die
                pc.backoff_base_s = 0.02;
                rig->sup = std::make_unique<resil::Supervisor>(n, pc);
                rig->sup->supervise(n.compute_vm()->id());
                rig->sup->start();
            }
            resil::ChaosConfig cc;
            cc.rate_hz = 5.0;
            rig->chaos = std::make_unique<resil::ChaosInjector>(n, cc);
            rig->chaos->start();
            // Count via a raw pointer grab before the rig dies with the trial.
            struct Counter {
                Rig* rig;
                std::uint64_t* out;
                ~Counter() { *out += rig->chaos->stats().injections; }
            };
            return std::shared_ptr<void>(new Counter{rig.get(), &injections},
                                         [rig](void* p) {
                                             delete static_cast<Counter*>(p);
                                         });
        };
        Harness harness(hopt);
        const core::TrialResult r =
            harness.run_trial(kind, wl::randomaccess_spec(), 71);
        EXPECT_GT(r.seconds, 0.0) << "config " << static_cast<int>(kind);
        EXPECT_EQ(r.check_failures, 0u)
            << "config " << static_cast<int>(kind) << "\n" << r.check_report;
    }
    SUCCEED();
}

}  // namespace
}  // namespace hpcsec
