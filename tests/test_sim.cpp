// Unit tests for the discrete-event substrate: time, RNG, stats, events.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/engine.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace hpcsec::sim {
namespace {

// --- ClockSpec --------------------------------------------------------------

TEST(ClockSpec, ConvertsSecondsRoundTrip) {
    ClockSpec clk{1'100'000'000};
    EXPECT_EQ(clk.from_seconds(1.0), 1'100'000'000u);
    EXPECT_DOUBLE_EQ(clk.to_seconds(1'100'000'000u), 1.0);
}

TEST(ClockSpec, MicrosAndMillis) {
    ClockSpec clk{1'000'000'000};
    EXPECT_EQ(clk.from_micros(1.0), 1000u);
    EXPECT_EQ(clk.from_millis(1.0), 1'000'000u);
    EXPECT_DOUBLE_EQ(clk.to_micros(1000), 1.0);
}

TEST(ClockSpec, PeriodOfHz) {
    ClockSpec clk{1'000'000'000};
    EXPECT_EQ(clk.period_of_hz(250.0), 4'000'000u);
    EXPECT_EQ(clk.period_of_hz(10.0), 100'000'000u);
}

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowZeroAndOne) {
    Rng r(7);
    EXPECT_EQ(r.next_below(0), 0u);
    EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
    Rng r(99);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, UniformMeanConverges) {
    Rng r(42);
    double sum = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) sum += r.uniform(10.0, 20.0);
    EXPECT_NEAR(sum / kN, 15.0, 0.1);
}

TEST(Rng, ExponentialMeanConverges) {
    Rng r(42);
    double sum = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) sum += r.exponential(3.0);
    EXPECT_NEAR(sum / kN, 3.0, 0.15);
}

TEST(Rng, NormalMomentsConverge) {
    Rng r(42);
    RunningStats s;
    for (int i = 0; i < 20000; ++i) s.add(r.normal(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, SplitStreamsAreIndependentButDeterministic) {
    Rng a(5);
    Rng c1 = a.split();
    Rng a2(5);
    Rng c2 = a2.split();
    for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

// --- RunningStats -------------------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, MergeMatchesSequential) {
    RunningStats all, a, b;
    Rng r(3);
    for (int i = 0; i < 100; ++i) {
        const double v = r.uniform(0, 100);
        all.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.count(), all.count());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// --- Sample / percentiles -------------------------------------------------------

TEST(Sample, PercentilesOnKnownData) {
    Sample s;
    for (int i = 1; i <= 100; ++i) s.add(i);
    EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.01);
}

TEST(Sample, SingleValue) {
    Sample s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.median(), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 42.0);
}

TEST(Sample, EmptySampleYieldsZero) {
    const Sample s;
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
}

TEST(Sample, PercentileClampsOutOfRangeP) {
    Sample s;
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.percentile(-10.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(400.0), 3.0);
}

TEST(Sample, ConstPercentileDoesNotMutate) {
    Sample s;
    s.add(3.0);
    s.add(1.0);
    s.add(2.0);
    const Sample& cs = s;
    EXPECT_DOUBLE_EQ(cs.percentile(50), 2.0);
    // Insertion order preserved: the const overload sorted a copy.
    EXPECT_DOUBLE_EQ(cs.values()[0], 3.0);
    EXPECT_DOUBLE_EQ(cs.values()[1], 1.0);
    // The mutating overload sorts in place and agrees.
    EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
    EXPECT_DOUBLE_EQ(cs.values()[0], 1.0);
}

// --- LogHistogram ---------------------------------------------------------------

TEST(LogHistogram, BucketsValues) {
    LogHistogram h(1.0, 10.0, 5);  // [0,1), [1,10), [10,100), ...
    h.add(0.5);
    h.add(5.0);
    h.add(50.0);
    h.add(5000.0);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
}

// --- EventQueue -------------------------------------------------------------------

TEST(EventQueue, OrdersByTime) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, 0, [&] { order.push_back(3); });
    q.schedule(10, 0, [&] { order.push_back(1); });
    q.schedule(20, 0, [&] { order.push_back(2); });
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBrokenByPriorityThenSeq) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, 10, [&] { order.push_back(2); });
    q.schedule(5, 0, [&] { order.push_back(1); });
    q.schedule(5, 10, [&] { order.push_back(3); });
    while (!q.empty()) q.pop().fn();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule(5, 0, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
    EventQueue q;
    const EventId id = q.schedule(5, 0, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterRunFails) {
    EventQueue q;
    const EventId id = q.schedule(5, 0, [] {});
    q.pop().fn();
    EXPECT_FALSE(q.cancel(id));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
    EventQueue q;
    EXPECT_FALSE(q.cancel(EventId{}));
    EXPECT_FALSE(q.cancel(EventId{999}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
    EventQueue q;
    const EventId a = q.schedule(1, 0, [] {});
    q.schedule(2, 0, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.next_time(), 2u);
}

TEST(EventQueue, NextTimeSkipsTombstones) {
    EventQueue q;
    const EventId a = q.schedule(1, 0, [] {});
    q.schedule(5, 0, [] {});
    q.cancel(a);
    EXPECT_EQ(q.next_time(), 5u);
}

// --- Engine --------------------------------------------------------------------

TEST(Engine, AdvancesTime) {
    Engine e;
    SimTime seen = 0;
    e.after(100, [&] { seen = e.now(); });
    e.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, RunUntilStopsAtDeadline) {
    Engine e;
    int count = 0;
    // Self-rescheduling event every 10 cycles.
    std::function<void()> tick = [&] {
        ++count;
        e.after(10, tick);
    };
    e.after(10, tick);
    e.run_until(100);
    EXPECT_EQ(count, 10);
    EXPECT_EQ(e.now(), 100u);
    EXPECT_GT(e.pending_events(), 0u);
}

TEST(Engine, StopBreaksOutEarly) {
    Engine e;
    int count = 0;
    e.after(1, [&] { ++count; });
    e.after(2, [&] {
        ++count;
        e.stop();
    });
    e.after(3, [&] { ++count; });
    e.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Engine, SchedulingInPastThrows) {
    Engine e;
    e.after(10, [] {});
    e.run();
    EXPECT_THROW(e.at(5, [] {}), std::logic_error);
}

TEST(Engine, EventsExecutedCounts) {
    Engine e;
    for (int i = 0; i < 7; ++i) e.after(static_cast<Cycles>(i + 1), [] {});
    e.run();
    EXPECT_EQ(e.events_executed(), 7u);
}

TEST(Engine, CancelledEventNotExecuted) {
    Engine e;
    bool ran = false;
    const EventId id = e.after(5, [&] { ran = true; });
    EXPECT_TRUE(e.cancel(id));
    e.run();
    EXPECT_FALSE(ran);
}

TEST(Engine, RunUntilAdvancesIdleTime) {
    Engine e;
    e.run_until(12345);
    EXPECT_EQ(e.now(), 12345u);
}

// --- TraceLog -------------------------------------------------------------------

TEST(TraceLog, DisabledByDefault) {
    TraceLog log;
    log.set_retain(true);
    log.log(1, TraceCat::kIrq, 0, "hello");
    EXPECT_TRUE(log.records().empty());
}

TEST(TraceLog, CategoryFiltering) {
    TraceLog log;
    log.set_retain(true);
    log.enable(TraceCat::kIrq);
    log.log(1, TraceCat::kIrq, 0, "irq event");
    log.log(2, TraceCat::kSched, 0, "sched event");
    EXPECT_EQ(log.records().size(), 1u);
    EXPECT_EQ(log.count_matching("irq"), 1u);
}

TEST(TraceLog, AllMaskCatchesEverything) {
    TraceLog log;
    log.set_retain(true);
    log.enable(TraceCat::kAll);
    log.log(1, TraceCat::kVm, 2, "a");
    log.log(2, TraceCat::kMmu, 3, "b");
    EXPECT_EQ(log.records().size(), 2u);
    EXPECT_EQ(log.records()[1].core, 3);
}

}  // namespace
}  // namespace hpcsec::sim
