// End-to-end smoke tests: boot each configuration and run work through it.
#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/node.h"
#include "workloads/nas.h"
#include "workloads/randomaccess.h"
#include "workloads/selfish.h"

namespace hpcsec {
namespace {

core::NodeConfig cfg_for(core::SchedulerKind kind) {
    return core::Harness::default_config(kind, 7);
}

wl::WorkloadSpec tiny_spec() {
    wl::WorkloadSpec s;
    s.name = "tiny";
    s.metric = "op/s";
    s.nthreads = 4;
    s.supersteps = 5;
    s.units_per_thread_step = 50000;
    s.profile.cycles_per_unit = 10.0;
    s.metric_per_unit = 1.0;
    return s;
}

TEST(Smoke, NativeBootsAndRuns) {
    core::Node node(cfg_for(core::SchedulerKind::kNativeKitten));
    node.boot();
    wl::ParallelWorkload w(tiny_spec());
    const double secs = node.run_workload(w, 60.0);
    EXPECT_TRUE(w.finished());
    EXPECT_GT(secs, 0.0);
    EXPECT_LT(secs, 60.0);
}

TEST(Smoke, KittenPrimaryBootsAndRuns) {
    core::Node node(cfg_for(core::SchedulerKind::kKittenPrimary));
    node.boot();
    ASSERT_NE(node.spm(), nullptr);
    EXPECT_EQ(node.spm()->vm_count(), 2);  // primary + compute
    wl::ParallelWorkload w(tiny_spec());
    const double secs = node.run_workload(w, 60.0);
    EXPECT_TRUE(w.finished());
    EXPECT_GT(secs, 0.0);
}

TEST(Smoke, LinuxPrimaryBootsAndRuns) {
    core::Node node(cfg_for(core::SchedulerKind::kLinuxPrimary));
    node.boot();
    wl::ParallelWorkload w(tiny_spec());
    const double secs = node.run_workload(w, 60.0);
    EXPECT_TRUE(w.finished());
    EXPECT_GT(secs, 0.0);
}

TEST(Smoke, SelfishRunsOnAllConfigs) {
    for (const auto kind : core::kAllConfigs) {
        const auto series = core::run_selfish_experiment(kind, 2.0, 11);
        // Every configuration ticks, so every configuration has detours.
        EXPECT_GT(series.detours_all_cores, 0u) << core::to_string(kind);
    }
}

TEST(Smoke, VirtualizedSlowerThanNativeOnTlbHeavyWork) {
    wl::WorkloadSpec s = wl::randomaccess_spec();
    s.units_per_thread_step /= 8;  // keep the test quick
    core::Harness::Options opt;
    opt.trials = 1;
    opt.measurement_noise = false;
    core::Harness h(opt);
    const auto native = h.run_trial(core::SchedulerKind::kNativeKitten, s, 3);
    const auto kitten = h.run_trial(core::SchedulerKind::kKittenPrimary, s, 3);
    EXPECT_GT(native.score, kitten.score);
}

}  // namespace
}  // namespace hpcsec
