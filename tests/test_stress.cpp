// Randomized stress / fuzz: drive a node with random management operations
// (migrations, stops, relaunches, IRQ storms, dynamic partitions) while a
// workload runs, and assert global invariants afterwards. Each seed is one
// TEST_P instance; failures reproduce deterministically from the seed.
#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/node.h"
#include "core/signature.h"
#include "sim/rng.h"
#include "workloads/workload.h"

namespace hpcsec::core {
namespace {

class StressFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressFuzz, RandomManagementOpsNeverBreakInvariants) {
    const std::uint64_t seed = GetParam();
    sim::Rng rng(seed);

    NodeConfig cfg = Harness::default_config(
        rng.next_double() < 0.5 ? SchedulerKind::kKittenPrimary
                                : SchedulerKind::kLinuxPrimary,
        seed);
    cfg.with_super_secondary = rng.next_double() < 0.5;
    Node node(cfg);
    node.boot();

    // Spinner keeps all VCPUs busy so ops hit running state often.
    wl::ParallelWorkload spin(wl::spinner_spec(4));
    spin.set_mode(arch::TranslationMode::kTwoStage);
    for (int i = 0; i < 4; ++i) node.compute_guest()->set_thread(i, &spin.thread(i));
    node.compute_guest()->wake_runnable_vcpus();
    for (int i = 0; i < 4; ++i) {
        node.spm()->make_vcpu_ready(node.compute_vm()->vcpu(i));
        node.primary_os()->on_vcpu_wake(node.compute_vm()->vcpu(i));
    }

    const arch::VmId compute = node.compute_vm()->id();
    for (int step = 0; step < 60; ++step) {
        node.run_for(0.01 + rng.next_double() * 0.05);
        switch (rng.next_below(6)) {
            case 0: {  // migrate a random vcpu (Kitten primary only)
                if (node.kitten() != nullptr) {
                    const int v = static_cast<int>(rng.next_below(4));
                    const auto c = static_cast<arch::CoreId>(rng.next_below(4));
                    hafnium::Vcpu& vcpu = node.compute_vm()->vcpu(v);
                    node.spm()->force_stop_vcpu(vcpu);
                    node.kitten()->migrate_vcpu(compute, v, c);
                    node.spm()->wake_vcpu(vcpu);
                }
                break;
            }
            case 1: {  // device IRQ burst
                for (int i = 0; i < static_cast<int>(rng.next_below(8)); ++i) {
                    node.platform().irqc().raise_external(32);
                }
                break;
            }
            case 2: {  // force-stop then wake a vcpu
                hafnium::Vcpu& vcpu = node.compute_vm()->vcpu(
                    static_cast<int>(rng.next_below(4)));
                node.spm()->force_stop_vcpu(vcpu);
                node.primary_os()->on_vcpu_wake(vcpu);
                break;
            }
            case 3: {  // random hypercall garbage from the compute VM
                node.spm()->hypercall(
                    static_cast<arch::CoreId>(rng.next_below(4)), compute,
                    static_cast<hafnium::Call>(rng.next_below(64)),
                    {rng.next_u64() % 8, rng.next_u64() % 8, rng.next_u64(),
                     rng.next_u64()});
                break;
            }
            case 4: {  // send an SGI somewhere
                node.platform().irqc().send_ipi(
                    static_cast<arch::CoreId>(rng.next_below(4)),
                    static_cast<int>(rng.next_below(3)));
                break;
            }
            case 5: {  // idle a while
                node.run_for(0.02);
                break;
            }
        }
    }
    node.run_for(0.2);

    // --- invariants -----------------------------------------------------------
    // I. Simulated time advanced and the engine is healthy.
    EXPECT_GT(node.platform().engine().now(), 0u);

    // II. Every VCPU is in a coherent state w.r.t. the core map.
    int running = 0;
    for (int v = 0; v < node.compute_vm()->vcpu_count(); ++v) {
        const hafnium::Vcpu& vcpu = node.compute_vm()->vcpu(v);
        if (vcpu.state() == hafnium::VcpuState::kRunning) {
            ++running;
            EXPECT_GE(vcpu.running_core, 0);
        } else {
            EXPECT_EQ(vcpu.running_core, -1);
        }
    }
    EXPECT_LE(running, node.platform().ncores());

    // III. Isolation still holds: every translated frame is owned.
    for (int trial = 0; trial < 64; ++trial) {
        const arch::IpaAddr ipa = rng.next_below(node.compute_vm()->mem_bytes());
        const arch::WalkResult w = node.compute_vm()->stage2().walk(ipa);
        ASSERT_EQ(w.fault, arch::FaultKind::kNone);
        const auto owner = node.platform().mem().owner_of(w.out);
        ASSERT_TRUE(owner.has_value());
        EXPECT_EQ(owner->vm, compute);
    }

    // IV. The node still schedules: the spinner accumulates fresh runtime.
    const auto runs_before = node.compute_vm()->vcpu(0).runs +
                             node.compute_vm()->vcpu(1).runs +
                             node.compute_vm()->vcpu(2).runs +
                             node.compute_vm()->vcpu(3).runs;
    node.run_for(1.0);
    std::uint64_t runs_after = 0;
    for (int v = 0; v < 4; ++v) runs_after += node.compute_vm()->vcpu(v).runs;
    EXPECT_GT(runs_after, runs_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

class DynamicChurnFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicChurnFuzz, PartitionChurnConservesMemory) {
    const std::uint64_t seed = GetParam();
    sim::Rng rng(seed ^ 0xc4u);

    NodeConfig cfg = Harness::default_config(SchedulerKind::kKittenPrimary, seed);
    Node node(cfg);
    node.boot();
    const auto baseline = node.platform().mem().allocated_frames();

    std::vector<arch::VmId> live;
    int next_key = 0;
    for (int step = 0; step < 12; ++step) {
        node.run_for(0.01);
        if (live.size() < 3 && (live.empty() || rng.next_double() < 0.6)) {
            ImageSigner signer(std::vector<std::uint8_t>(
                32, static_cast<std::uint8_t>(seed + next_key)));
            node.verifier().enroll(signer.public_key());
            const std::string name = "churn-" + std::to_string(next_key++);
            auto img = signer.sign(name, Node::make_image(name));
            const std::uint64_t mem = (16ull + 16ull * rng.next_below(3)) << 20;
            live.push_back(node.launch_dynamic_vm(*img, mem,
                                                  1 + static_cast<int>(rng.next_below(4))));
        } else if (!live.empty()) {
            const std::size_t idx = rng.next_below(live.size());
            node.destroy_dynamic_vm(live[idx]);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
    }
    for (const arch::VmId id : live) node.destroy_dynamic_vm(id);
    EXPECT_EQ(node.platform().mem().allocated_frames(), baseline);
    node.run_for(0.5);  // node still healthy
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicChurnFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hpcsec::core
