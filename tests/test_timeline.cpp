// Timeline recorder tests: span accounting, window clamping, rendering,
// executor integration, and the no-observer-effect guarantee.
#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/node.h"
#include "sim/timeline.h"
#include "workloads/nas.h"

namespace hpcsec {
namespace {

TEST(Timeline, RecordsAndTotals) {
    sim::Timeline t;
    t.record(0, 100, 200, 'W', "app");
    t.record(0, 200, 230, 'O', "kernel");
    t.record(1, 0, 50, 'W', "app");
    EXPECT_EQ(t.spans().size(), 3u);
    EXPECT_EQ(t.total('W'), 150u);
    EXPECT_EQ(t.total('W', 0), 100u);
    EXPECT_EQ(t.total('O'), 30u);
}

TEST(Timeline, TotalClampsToWindow) {
    sim::Timeline t;
    t.record(0, 100, 300, 'W', "app");
    EXPECT_EQ(t.total('W', 0, 150, 250), 100u);
    EXPECT_EQ(t.total('W', 0, 0, 100), 0u);
    EXPECT_EQ(t.total('W', 0, 300, 400), 0u);
}

TEST(Timeline, IgnoresEmptyAndRespectsCap) {
    sim::Timeline t(2);
    t.record(0, 10, 10, 'W', "empty");  // zero length dropped
    EXPECT_TRUE(t.spans().empty());
    t.record(0, 0, 1, 'W', "a");
    t.record(0, 1, 2, 'W', "b");
    t.record(0, 2, 3, 'W', "c");  // over cap
    EXPECT_EQ(t.spans().size(), 2u);
    EXPECT_TRUE(t.saturated());
}

TEST(Timeline, RenderShowsBusyAndIdle) {
    sim::Timeline t;
    t.record(0, 0, 500, 'W', "app");       // first half busy
    const std::string s = t.render(0, 1000, 1, 10);
    EXPECT_NE(s.find("#####....."), std::string::npos);
}

TEST(Timeline, RenderHighlightsOverheadSlivers) {
    sim::Timeline t;
    t.record(0, 0, 1000, 'W', "app");
    t.record(0, 400, 480, 'O', "tick");  // 8% of the strip, 80% of its bucket
    const std::string s = t.render(0, 1000, 1, 10);
    EXPECT_NE(s.find('o'), std::string::npos);
}

TEST(Timeline, RenderTlbGlyph) {
    sim::Timeline t;
    t.record(0, 0, 100, 'T', "refill");
    const std::string s = t.render(0, 100, 1, 4);
    EXPECT_NE(s.find('t'), std::string::npos);
}

TEST(Timeline, ExecutorEmitsWorkOverheadAndTransient) {
    sim::Engine engine;
    arch::PerfModel perf;
    arch::Executor ex(engine, perf, 0);
    sim::Timeline t;
    ex.set_timeline(&t);

    struct W : arch::Runnable {
        double rem = 1000;
        arch::WorkProfile prof{};
        std::string_view label() const override { return "w"; }
        double remaining_units() const override { return rem; }
        void advance(double u, sim::SimTime) override {
            rem = u >= rem ? 0 : rem - u;
        }
        const arch::WorkProfile& profile() const override { return prof_; }
        arch::TranslationMode mode() const override {
            return arch::TranslationMode::kNative;
        }
        arch::WorkProfile prof_{1.0, 0.0, 0.0, 64.0};
    } w;

    ex.charge(100);
    ex.add_transient(50);
    ex.begin(&w);
    engine.run();
    EXPECT_EQ(t.total('O'), 100u);
    EXPECT_EQ(t.total('T'), 50u);
    EXPECT_EQ(t.total('W'), 1000u);
}

TEST(Timeline, AttachingNeverChangesTiming) {
    wl::WorkloadSpec spec = wl::nas_cg_spec();
    spec.units_per_thread_step /= 16;

    auto run = [&](bool with_timeline) {
        core::Node node(core::Harness::default_config(
            core::SchedulerKind::kLinuxPrimary, 44));
        node.boot();
        sim::Timeline t;
        if (with_timeline) {
            for (int c = 0; c < node.platform().ncores(); ++c) {
                node.platform().core(c).exec().set_timeline(&t);
            }
        }
        wl::ParallelWorkload w(spec);
        return node.run_workload(w, 60.0);
    };
    EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace hpcsec
