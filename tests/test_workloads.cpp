// Workload tests: the real computational kernels verify their numerics,
// and the BSP workload framework honours barrier/spin semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "workloads/hpcg.h"
#include "workloads/nas.h"
#include "workloads/randomaccess.h"
#include "workloads/selfish.h"
#include "workloads/stream.h"
#include "workloads/workload.h"

namespace hpcsec::wl {
namespace {

// --- STREAM ---------------------------------------------------------------------

TEST(StreamKernel, VerifiesAfterIterations) {
    StreamKernel k(1u << 14);
    k.run(10);
    EXPECT_TRUE(k.verify());
    EXPECT_EQ(k.iterations(), 10);
}

TEST(StreamKernel, DetectsCorruption) {
    StreamKernel k(1u << 12);
    k.run(3);
    // Corrupt one element through the public accessor's storage.
    const_cast<double&>(k.a()[7]) += 1.0;
    EXPECT_FALSE(k.verify());
}

TEST(StreamKernel, BytesPerRoundMatchesConvention) {
    StreamKernel k(1000);
    EXPECT_DOUBLE_EQ(k.bytes_per_round(), 10.0 * 1000 * 8);
}

TEST(StreamSpec, CalibratedToPaperNative) {
    const WorkloadSpec s = stream_spec();
    // cycles/byte * bytes/s = 4 cores * 1.1 GHz  =>  MB/s ~= 59.6.
    const double mbps = 4.0 * 1.1e9 / s.profile.cycles_per_unit / 1e6;
    EXPECT_NEAR(mbps, 59.6, 0.5);
}

// --- RandomAccess ------------------------------------------------------------------

TEST(RandomAccessKernel, UpdateStreamIsInvolution) {
    RandomAccessKernel k(14);
    k.run(50000, 42);
    EXPECT_EQ(k.verify_and_count_errors(50000, 42), 0u);
}

TEST(RandomAccessKernel, DifferentSeedLeavesResidue) {
    RandomAccessKernel k(12);
    k.run(20000, 1);
    EXPECT_GT(k.verify_and_count_errors(20000, 2), 0u);
}

TEST(RandomAccessKernel, CountsUpdates) {
    RandomAccessKernel k(10);
    k.run(123, 9);
    EXPECT_EQ(k.updates_done(), 123u);
    EXPECT_EQ(k.table_words(), 1024u);
}

TEST(RandomAccessSpec, TlbHostileProfile) {
    const WorkloadSpec s = randomaccess_spec();
    EXPECT_DOUBLE_EQ(s.profile.tlb_miss_rate, 1.0);
    EXPECT_GT(s.profile.working_set_pages, 512.0);  // exceeds TLB reach
    const double gups = 4.0 * 1.1e9 /
                        (s.profile.cycles_per_unit + 25.0 * 35.0) / 1e9;
    EXPECT_NEAR(gups, 6.5e-5, 2e-6);
}

// --- HPCG ---------------------------------------------------------------------------

TEST(HpcgKernel, CgConvergesOnStencil) {
    HpcgKernel k(12, 12, 12);
    const auto res = k.solve(40, 1e-7);
    EXPECT_GT(res.iterations, 1);
    EXPECT_LT(res.reduction(), 1e-6);
    EXPECT_GT(res.flops, 0.0);
}

TEST(HpcgKernel, LargerGridStillConverges) {
    HpcgKernel k(16, 16, 16);
    const auto res = k.solve(50, 1e-6);
    EXPECT_LT(res.reduction(), 1e-5);
}

TEST(HpcgKernel, FlopCountScalesWithRows) {
    HpcgKernel small(8, 8, 8), big(16, 16, 16);
    EXPECT_NEAR(big.flops_per_iteration() / small.flops_per_iteration(), 8.0, 0.01);
}

// --- NAS random stream ----------------------------------------------------------------

TEST(NasRandom, MatchesReferenceSequenceProperties) {
    NasRandom r;
    // All deviates in (0,1), deterministic across instances.
    NasRandom r2;
    for (int i = 0; i < 1000; ++i) {
        const double a = r.next();
        EXPECT_GT(a, 0.0);
        EXPECT_LT(a, 1.0);
        EXPECT_DOUBLE_EQ(a, r2.next());
    }
}

TEST(NasRandom, SkipMatchesSequentialAdvance) {
    NasRandom seq, skip;
    for (int i = 0; i < 777; ++i) (void)seq.next();
    skip.skip(777);
    EXPECT_DOUBLE_EQ(seq.next(), skip.next());
}

TEST(NasRandom, SkipZeroIsIdentity) {
    NasRandom a, b;
    b.skip(0);
    EXPECT_DOUBLE_EQ(a.next(), b.next());
}

// --- EP ----------------------------------------------------------------------------

TEST(EpKernel, AcceptanceRateNearPiOver4) {
    const auto r = EpKernel::run(200000);
    const double rate =
        static_cast<double>(r.pairs_accepted) / static_cast<double>(r.pairs_generated);
    EXPECT_NEAR(rate, M_PI / 4.0, 0.01);
}

TEST(EpKernel, GaussianSumsNearZero) {
    const auto r = EpKernel::run(200000);
    const auto n = static_cast<double>(r.pairs_accepted);
    EXPECT_LT(std::fabs(r.sx) / n, 0.02);
    EXPECT_LT(std::fabs(r.sy) / n, 0.02);
}

TEST(EpKernel, AnnulusCountsSumToAccepted) {
    const auto r = EpKernel::run(50000);
    std::uint64_t total = 0;
    for (const auto c : r.annulus_counts) total += c;
    EXPECT_EQ(total, r.pairs_accepted);
    // Nearly all Gaussian deviates fall in |x|<4.
    EXPECT_GT(r.annulus_counts[0] + r.annulus_counts[1], r.pairs_accepted / 2);
}

TEST(EpKernel, DeterministicForSeed) {
    const auto a = EpKernel::run(10000, 7.0);
    const auto b = EpKernel::run(10000, 7.0);
    EXPECT_EQ(a.pairs_accepted, b.pairs_accepted);
    EXPECT_DOUBLE_EQ(a.sx, b.sx);
}

// --- NAS CG -----------------------------------------------------------------------------

TEST(NasCgKernel, EstimatesSmallestEigenvalue) {
    const auto r = NasCgKernel::run(24, 6, 30);
    const double expected = NasCgKernel::analytic_lambda_min(24);
    EXPECT_NEAR(r.zeta, expected, expected * 0.05);
}

TEST(NasCgKernel, CountsWork) {
    const auto r = NasCgKernel::run(16, 2, 10);
    EXPECT_EQ(r.iterations, 20);
    EXPECT_GT(r.flops, 0.0);
}

// --- ADI (BT/SP) -------------------------------------------------------------------------

TEST(AdiKernel, DecaysTowardSteadyState) {
    AdiKernel k(12, 12, 12, 0.1);
    const double initial = k.max_abs();
    k.advance(20);
    EXPECT_LT(k.max_abs(), initial);
    // Further steps shrink the change monotonically (diffusion).
    const double c1 = k.advance(1);
    const double c2 = k.advance(1);
    EXPECT_LE(c2, c1);
}

TEST(AdiKernel, SymmetricInitialStaysSymmetric) {
    AdiKernel k(9, 9, 9, 0.05);
    k.advance(5);
    const auto& u = k.field();
    // Mirror symmetry in x for the separable sine initial condition.
    for (int j = 0; j < 9; ++j) {
        const std::size_t left = static_cast<std::size_t>(j) * 9 + 1;
        const std::size_t right = static_cast<std::size_t>(j) * 9 + 7;
        EXPECT_NEAR(u[left], u[right], 1e-9);
    }
}

// --- SSOR (LU) -----------------------------------------------------------------------------

TEST(SsorKernel, ResidualDecreases) {
    SsorKernel k(10, 10, 10);
    const auto r = k.relax(20);
    EXPECT_LT(r.final_residual, r.initial_residual * 0.01);
}

TEST(SsorKernel, MoreIterationsImprove) {
    SsorKernel a(8, 8, 8), b(8, 8, 8);
    const auto ra = a.relax(5);
    const auto rb = b.relax(25);
    EXPECT_LT(rb.final_residual, ra.final_residual);
}

// --- spec sanity across the suite ------------------------------------------------------------

class NasSpecSanity : public ::testing::TestWithParam<int> {};

TEST_P(NasSpecSanity, CalibratedToFig10Native) {
    const auto specs = nas_suite();
    const double paper_mops[] = {33.16, 34.214, 4.38, 0.77, 15.084};
    const auto& s = specs[static_cast<std::size_t>(GetParam())];
    const double cycles_per_op =
        s.profile.cycles_per_unit +
        s.profile.mem_refs_per_unit * s.profile.tlb_miss_rate * 35.0;
    const double mops = 4.0 * 1.1e9 / cycles_per_op / 1e6;
    EXPECT_NEAR(mops, paper_mops[GetParam()], paper_mops[GetParam()] * 0.01);
    EXPECT_GT(s.supersteps, 0);
    EXPECT_GT(s.units_per_thread_step, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFive, NasSpecSanity, ::testing::Range(0, 5));

// --- ParallelWorkload framework ---------------------------------------------------------------

TEST(ParallelWorkload, BarrierReleasesWhenAllArrive) {
    WorkloadSpec s;
    s.name = "t";
    s.nthreads = 2;
    s.supersteps = 3;
    s.units_per_thread_step = 10;
    ParallelWorkload w(s);
    int releases = 0;
    w.on_release = [&] { ++releases; };
    bool finished = false;
    w.on_finished = [&](sim::SimTime) { finished = true; };

    // Step 0: thread 0 arrives, spins.
    w.thread(0).advance(10, 100);
    EXPECT_EQ(w.thread(0).phase(), WorkThread::Phase::kSpinning);
    EXPECT_EQ(releases, 0);
    // Thread 1 arrives: barrier releases, both refilled.
    w.thread(1).advance(10, 110);
    EXPECT_EQ(releases, 1);
    EXPECT_EQ(w.thread(0).phase(), WorkThread::Phase::kWorking);
    EXPECT_EQ(w.current_step(), 1);

    // Finish the remaining two steps.
    for (int step = 0; step < 2; ++step) {
        w.thread(0).advance(10, 200 + step);
        w.thread(1).advance(10, 210 + step);
    }
    EXPECT_TRUE(finished);
    EXPECT_TRUE(w.finished());
    EXPECT_EQ(w.thread(0).phase(), WorkThread::Phase::kDone);
    EXPECT_EQ(w.thread(0).remaining_units(), 0.0);
}

TEST(ParallelWorkload, SpinPhaseReportsInfiniteWork) {
    WorkloadSpec s;
    s.name = "t";
    s.nthreads = 2;
    s.supersteps = 1;
    s.units_per_thread_step = 5;
    ParallelWorkload w(s);
    w.thread(0).advance(5, 1);
    EXPECT_GT(w.thread(0).remaining_units(), 1e20);
    // Spin progress is ignored.
    w.thread(0).advance(1e6, 2);
    EXPECT_EQ(w.thread(0).phase(), WorkThread::Phase::kSpinning);
}

TEST(ParallelWorkload, ResetRestoresFullWork) {
    WorkloadSpec s;
    s.name = "t";
    s.nthreads = 1;
    s.supersteps = 2;
    s.units_per_thread_step = 5;
    ParallelWorkload w(s);
    w.thread(0).advance(5, 1);
    w.thread(0).advance(5, 2);
    EXPECT_TRUE(w.finished());
    w.reset();
    EXPECT_FALSE(w.finished());
    EXPECT_EQ(w.current_step(), 0);
    EXPECT_EQ(w.thread(0).remaining_units(), 5.0);
}

TEST(ParallelWorkload, ScoreUsesTotalUnits) {
    WorkloadSpec s;
    s.name = "t";
    s.nthreads = 4;
    s.supersteps = 10;
    s.units_per_thread_step = 25;
    s.metric_per_unit = 2.0;
    ParallelWorkload w(s);
    EXPECT_DOUBLE_EQ(s.total_units(), 1000.0);
    EXPECT_DOUBLE_EQ(w.score(4.0), 500.0);
}

TEST(ParallelWorkload, RejectsBadShapes) {
    WorkloadSpec s;
    s.nthreads = 0;
    EXPECT_THROW(ParallelWorkload w(s), std::invalid_argument);
}

// --- DetourRecorder ------------------------------------------------------------------------------

TEST(DetourRecorder, FindsGapsAboveThreshold) {
    sim::ClockSpec clk{1'000'000'000};
    DetourRecorder rec(clk, 1.0);  // 1 us threshold
    rec.observe(0, 1000);
    rec.observe(1500, 2000);       // 0.5 us gap: below threshold
    rec.observe(12000, 13000);     // 10 us gap: detour
    ASSERT_EQ(rec.detours().size(), 1u);
    EXPECT_NEAR(rec.detours()[0].duration_us, 10.0, 1e-9);
    EXPECT_NEAR(rec.detours()[0].at_seconds, 2e-6, 1e-12);
    EXPECT_NEAR(rec.total_detour_us(), 10.0, 1e-9);
    EXPECT_NEAR(rec.max_detour_us(), 10.0, 1e-9);
}

TEST(DetourRecorder, FirstIntervalIsNotADetour) {
    sim::ClockSpec clk{1'000'000'000};
    DetourRecorder rec(clk, 1.0);
    rec.observe(50000, 60000);  // no prior interval
    EXPECT_TRUE(rec.detours().empty());
}

TEST(SelfishBenchmark, WiresRecorderPerThread) {
    SelfishBenchmark s(4, sim::ClockSpec{1'000'000'000});
    s.workload().thread(2).on_interval(0, 100);
    s.workload().thread(2).on_interval(5000, 6000);
    EXPECT_EQ(s.recorder(2).detours().size(), 1u);
    EXPECT_EQ(s.recorder(0).detours().size(), 0u);
    EXPECT_EQ(s.all_detours().size(), 1u);
}

}  // namespace
}  // namespace hpcsec::wl
