#!/usr/bin/env python3
"""Repository-specific static lint gate (registered as ctest label "lint").

Checks that cannot be expressed in the type system and that clang-tidy does
not know about:

  1. Enum/to_string coverage: every enumerator of the listed enums must
     appear as an explicit `Enum::kName` case in its to_string translation
     unit, so log output never degrades to "?" silently when an enum grows.

  2. Stats completeness: every field of hafnium::Spm::Stats must be
     published by Spm::publish_metrics (the obs reconciliation rule in
     src/check depends on the two staying in sync).

Exit status 0 = clean, 1 = findings (printed one per line).
"""

import re
import sys
from pathlib import Path

# Enum name -> (header that declares it, source file whose to_string must
# cover every enumerator).
ENUMS = {
    "Call": ("src/hafnium/hypercall.h", "src/hafnium/hypercall.cpp"),
    "HfError": ("src/hafnium/hypercall.h", "src/hafnium/hypercall.cpp"),
    "VcpuState": ("src/hafnium/vm.h", "src/hafnium/vm.cpp"),
    "ExitReason": ("src/hafnium/vm.h", "src/hafnium/vm.cpp"),
    "VmRole": ("src/hafnium/manifest.h", "src/hafnium/manifest.cpp"),
    "Rule": ("src/check/check.h", "src/check/check.cpp"),
    "Mode": ("src/check/check.h", "src/check/check.cpp"),
    "CorruptionKind": ("src/check/corrupt.h", "src/check/corrupt.cpp"),
    "EventType": ("src/obs/events.h", "src/obs/recorder.cpp"),
}

STATS_HEADER = "src/hafnium/spm.h"
STATS_SOURCE = "src/hafnium/spm.cpp"


def strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


def enum_members(header_text: str, enum: str) -> list[str]:
    m = re.search(
        r"enum\s+class\s+" + re.escape(enum) + r"\b[^{]*\{(.*?)\};",
        strip_comments(header_text),
        flags=re.S,
    )
    if m is None:
        return []
    return re.findall(r"\b(k[A-Za-z0-9_]+)\b\s*(?:=[^,}]*)?[,}\s]", m.group(1) + ",")


def check_enum_coverage(root: Path) -> list[str]:
    problems = []
    for enum, (header, source) in ENUMS.items():
        header_text = (root / header).read_text()
        members = enum_members(header_text, enum)
        if not members:
            problems.append(f"{header}: enum {enum} not found (lint table stale?)")
            continue
        source_text = strip_comments((root / source).read_text())
        for member in members:
            if not re.search(rf"\b{enum}::{member}\b", source_text):
                problems.append(
                    f"{source}: to_string({enum}) misses {enum}::{member}"
                )
    return problems


def stats_fields(header_text: str) -> list[str]:
    m = re.search(r"struct\s+Stats\s*\{(.*?)\};", strip_comments(header_text), re.S)
    if m is None:
        return []
    return re.findall(r"\b(\w+)\s*=\s*0\s*;", m.group(1))


def check_stats_published(root: Path) -> list[str]:
    problems = []
    fields = stats_fields((root / STATS_HEADER).read_text())
    if not fields:
        return [f"{STATS_HEADER}: Spm::Stats not found (lint table stale?)"]
    source_text = strip_comments((root / STATS_SOURCE).read_text())
    m = re.search(
        r"void\s+Spm::publish_metrics\s*\(\)\s*\{(.*?)\n\}", source_text, re.S
    )
    if m is None:
        return [f"{STATS_SOURCE}: Spm::publish_metrics not found"]
    body = m.group(1)
    for field in fields:
        if not re.search(rf"\bstats_\.{field}\b", body):
            problems.append(
                f"{STATS_SOURCE}: publish_metrics does not publish Stats::{field}"
            )
    return problems


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    problems = check_enum_coverage(root) + check_stats_published(root)
    for p in problems:
        print(p)
    if problems:
        print(f"lint: {len(problems)} problem(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
