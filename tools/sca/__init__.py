"""hpcsec-sca: project-specific static analyzer for the hpcsec tree.

Enforces the invariants this reproduction depends on but cannot express in
the type system: determinism (jobs=1 == jobs=N), the include-layer DAG,
no naked throws on guest-reachable SPM paths, lock discipline around the
few shared structures, and the enum/dispatch/Stats completeness gates that
used to live in tools/lint.py.

Run as `python3 tools/sca` (or `python3 -m sca` with tools/ on PYTHONPATH).
See docs/ANALYSIS.md for the rule catalog and suppression workflow.
"""

__version__ = "1.0.0"
