import sys
from pathlib import Path

if __package__ in (None, ""):
    # Invoked as `python3 tools/sca`: make the package importable by name.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from sca.cli import main  # noqa: E402

sys.exit(main())
