"""Shared multi-pass analysis context handed to every rule."""

from __future__ import annotations

from functools import cached_property
from pathlib import Path

from sca.callgraph import CallGraph
from sca.model import Corpus


class Analysis:
    def __init__(self, root: Path, config: dict):
        self.root = root
        self.config = config
        self.corpus = Corpus(root)

    @cached_property
    def callgraph(self) -> CallGraph:
        return CallGraph(
            self.corpus.src_files(),
            ambiguous=set(self.config["ambiguous_callees"]),
            extra_edges=self.config["extra_call_edges"])
