"""Baseline file: accepted pre-existing findings, by line-insensitive
fingerprint, so adoption of a new rule can be incremental without
grandfathering *new* regressions."""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from sca.model import Finding


def fingerprint(f: Finding) -> str:
    return hashlib.sha1(f.fingerprint_key().encode()).hexdigest()[:16]


def load(path: Path) -> dict[str, str]:
    if not path.is_file():
        return {}
    doc = json.loads(path.read_text())
    return dict(doc.get("findings", {}))


def save(path: Path, findings: list[Finding]) -> None:
    doc = {
        "comment": "accepted pre-existing sca findings; regenerate with "
                   "python3 tools/sca --write-baseline",
        "findings": {
            fingerprint(f): f"{f.rule} {f.path}: {f.message}"
            for f in findings
        },
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
