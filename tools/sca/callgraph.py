"""Function extraction and a name-matched, try/catch-aware call graph.

This is the shared analysis pass behind no-throw-guest-path and the
function-context lookups other rules need (lock-discipline,
exhaustive-switch). It is deliberately an over-approximation: a call site
`f(...)` edges to *every* function whose unqualified name is `f`, except
names listed in the project's `ambiguous_callees` (std-container noise).
Calls and throws inside a `try { ... }` that has a catch handler are
treated as locally handled and do not propagate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from sca import lexer
from sca.model import SourceFile

_KEYWORDS = frozenset(
    "if for while switch catch return sizeof alignof decltype noexcept "
    "static_assert new delete throw co_await co_return co_yield "
    "static_cast dynamic_cast const_cast reinterpret_cast assert defined "
    "case default else do goto using namespace template typename operator "
    "alignas explicit".split())

_HEAD_RE = re.compile(r"([A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")
_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
_THROW_RE = re.compile(r"\bthrow\b")


@dataclass
class FuncDef:
    qname: str            # e.g. "Spm::on_mem_share" (namespace dropped)
    name: str             # unqualified: "on_mem_share"
    file: SourceFile
    start: int            # offset of the signature in clean text
    body_start: int       # offset of '{'
    body_end: int         # offset one past '}'
    line: int
    handled_spans: list[tuple[int, int]] = field(default_factory=list)
    # spans (relative to file clean text) inside try{} blocks with a catch

    def body(self) -> str:
        return self.file.clean[self.body_start:self.body_end]

    def covers(self, offset: int) -> bool:
        return self.body_start <= offset < self.body_end

    def is_handled(self, offset: int) -> bool:
        return any(a <= offset < b for a, b in self.handled_spans)


def _try_spans(clean: str, body_start: int, body_end: int) -> list[tuple[int, int]]:
    spans = []
    for m in re.finditer(r"\btry\b", clean[body_start:body_end]):
        open_idx = clean.find("{", body_start + m.end(), body_end)
        if open_idx < 0:
            continue
        close = lexer.match_brace(clean, open_idx)
        # Require a catch handler after the try block for it to be a barrier.
        tail = clean[close:min(close + 80, body_end)]
        if re.match(r"\s*catch\b", tail):
            spans.append((open_idx, close))
    return spans


def extract_functions(sf: SourceFile) -> list[FuncDef]:
    """Find every function definition (with a body) in one file."""
    clean = sf.clean
    out: list[FuncDef] = []
    pos = 0
    while True:
        m = _HEAD_RE.search(clean, pos)
        if m is None:
            break
        name_tok = re.sub(r"\s+", "", m.group(1))
        open_paren = m.end() - 1
        close_paren = lexer.match_paren(clean, open_paren)
        if close_paren < 0:
            pos = m.end()
            continue
        last = name_tok.split("::")[-1].lstrip("~")
        if last in _KEYWORDS or name_tok.split("::")[0] in _KEYWORDS:
            pos = m.end()
            continue
        # Character immediately before the name must not make this a call
        # in an expression context (x.f(...), x->f(...), f(...) as an arg).
        # '*' and '&' stay allowed: they are pointer/reference return types
        # in a definition context, and an expression like `a * f(x)` can
        # never be followed by '{', so the is_def walk rejects it anyway.
        before = clean[:m.start()].rstrip()
        prev = before[-1] if before else ""
        if prev in ".(,!|+-/%<?:=^[" or before.endswith("->") \
                or before.endswith("return") or before.endswith("throw"):
            pos = m.end()
            continue
        # Walk past trailing qualifiers to the body '{' (or reject).
        i = close_paren
        is_def = False
        while i < len(clean):
            rest = clean[i:i + 32]
            ws = len(rest) - len(rest.lstrip())
            if ws:
                i += ws
                continue
            if clean[i] == "{":
                is_def = True
                break
            if clean[i] in ";=":
                break       # declaration / = default / initializer call
            if clean[i] == ":" and not clean.startswith("::", i):
                # Constructor member-init list: scan to '{' at depth 0.
                depth = 0
                j = i + 1
                while j < len(clean):
                    cch = clean[j]
                    if cch in "(<[":
                        depth += 1
                    elif cch in ")>]":
                        depth -= 1
                    elif cch == "{" and depth <= 0:
                        i = j
                        is_def = True
                        break
                    elif cch == ";" and depth <= 0:
                        break
                    j += 1
                break
            m2 = re.match(r"(const|noexcept|override|final|mutable|->\s*[\w:<>,&*\s]+?(?=\s*\{)|noexcept\s*\([^)]*\))",
                          clean[i:])
            if m2 is None:
                break
            i += m2.end()
        if not is_def:
            pos = m.end()
            continue
        body_end = lexer.match_brace(clean, i)
        qname = "::".join(name_tok.split("::")[-2:]) if "::" in name_tok else name_tok
        fd = FuncDef(qname=qname, name=last, file=sf, start=m.start(),
                     body_start=i, body_end=body_end,
                     line=sf.line_of(m.start()))
        fd.handled_spans = _try_spans(clean, i, body_end)
        out.append(fd)
        # Continue scanning inside the body too (nested lambdas/classes are
        # treated as part of the enclosing function; that is conservative).
        pos = m.end()
    return out


class CallGraph:
    def __init__(self, files: list[SourceFile], ambiguous: set[str],
                 extra_edges: list[list[str]]):
        self.functions: list[FuncDef] = []
        for sf in files:
            self.functions.extend(extract_functions(sf))
        self.by_name: dict[str, list[FuncDef]] = {}
        self.by_qname: dict[str, list[FuncDef]] = {}
        for fd in self.functions:
            self.by_name.setdefault(fd.name, []).append(fd)
            self.by_qname.setdefault(fd.qname, []).append(fd)
        self.ambiguous = ambiguous
        self.extra_edges: dict[str, list[str]] = {}
        for src, dst in extra_edges:
            self.extra_edges.setdefault(src, []).append(dst)

    def function_at(self, sf: SourceFile, offset: int) -> FuncDef | None:
        best = None
        for fd in self.functions:
            if fd.file is sf and fd.covers(offset):
                # innermost (largest body_start) wins
                if best is None or fd.body_start > best.body_start:
                    best = fd
        return best

    def resolve(self, qname_or_name: str) -> list[FuncDef]:
        return self.by_qname.get(qname_or_name) or \
            self.by_name.get(qname_or_name, [])

    def callees(self, fd: FuncDef, barrier) -> list[tuple[str, int]]:
        """(callee unqualified name, call-site offset) pairs; skips calls
        inside try/catch and call sites for which `barrier(line)` is true."""
        out = []
        clean = fd.file.clean
        for m in _CALL_RE.finditer(clean, fd.body_start, fd.body_end):
            name = m.group(1)
            if name in _KEYWORDS or name in self.ambiguous:
                continue
            if name not in self.by_name:
                continue
            if fd.is_handled(m.start()):
                continue
            if barrier is not None and barrier(fd.file, fd.file.line_of(m.start())):
                continue
            out.append((name, m.start()))
        for dst in self.extra_edges.get(fd.name, []) + \
                self.extra_edges.get(fd.qname, []):
            out.append((dst, fd.body_start))
        return out

    def throws(self, fd: FuncDef) -> list[int]:
        """Offsets of naked throw statements outside try/catch handling."""
        out = []
        clean = fd.file.clean
        for m in _THROW_RE.finditer(clean, fd.body_start, fd.body_end):
            if not fd.is_handled(m.start()):
                out.append(m.start())
        return out
