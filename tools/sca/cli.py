"""hpcsec-sca command line driver.

Exit status 0 = clean (every finding suppressed in source or accepted in
the baseline), 1 = unsuppressed findings, 2 = usage/config error.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from sca import __version__, baseline as baseline_mod, project, sarif
from sca.analysis import Analysis
from sca.model import Finding
from sca.registry import all_rules, run_rules


def _parse_args(argv):
    p = argparse.ArgumentParser(
        prog="sca",
        description="hpcsec project static analyzer (see docs/ANALYSIS.md)")
    p.add_argument("--root", default=".",
                   help="repository root to analyze (default: cwd)")
    p.add_argument("--config", default=None,
                   help="project config JSON overriding the built-in tables")
    p.add_argument("--rules", default=None,
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--baseline", default=None,
                   help="baseline file (default: <root>/tools/sca/baseline.json)")
    p.add_argument("--write-baseline", action="store_true",
                   help="accept current unsuppressed findings into the baseline")
    p.add_argument("--sarif-out", default=None,
                   help="also write a SARIF 2.1.0 report to this path")
    p.add_argument("--list-rules", action="store_true")
    p.add_argument("--verbose", action="store_true",
                   help="also print suppressed/baselined findings")
    p.add_argument("--version", action="version", version=__version__)
    return p.parse_args(argv)


def main(argv=None) -> int:
    t0 = time.monotonic()
    args = _parse_args(argv)

    if args.list_rules:
        for r in all_rules():
            print(f"{r.rule_id:24} {r.summary}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"sca: no such root: {root}")
        return 2
    config = project.load(root, args.config)

    selected = None
    if args.rules:
        selected = {r.strip() for r in args.rules.split(",") if r.strip()}
        known = {r.rule_id for r in all_rules()}
        unknown = selected - known
        if unknown:
            print(f"sca: unknown rule(s): {', '.join(sorted(unknown))}")
            return 2
        # Suppression hygiene rides along whenever anything else runs, so a
        # filtered run cannot green-light rotten suppressions.
        selected.add("suppression-hygiene")

    analysis = Analysis(root, config)
    findings = run_rules(analysis, selected)

    baseline_path = Path(args.baseline) if args.baseline \
        else root / "tools" / "sca" / "baseline.json"
    accepted = baseline_mod.load(baseline_path)

    open_findings: list[Finding] = []
    annotated: list[tuple[Finding, str | None]] = []
    n_suppressed = n_baselined = 0
    for f in findings:
        sf = analysis.corpus.get(f.path)
        sup = sf.suppression_for(f.rule, f.line) if sf is not None else None
        if sup is not None and f.rule != "suppression-hygiene":
            sup.used = True
            n_suppressed += 1
            annotated.append((f, "inSource"))
            if args.verbose:
                print(f"{f.path}:{f.line}: [{f.rule}] suppressed "
                      f"({sup.reason}): {f.message}")
            continue
        if baseline_mod.fingerprint(f) in accepted:
            n_baselined += 1
            annotated.append((f, "external"))
            if args.verbose:
                print(f"{f.path}:{f.line}: [{f.rule}] baselined: {f.message}")
            continue
        annotated.append((f, None))
        open_findings.append(f)

    if args.write_baseline:
        baseline_mod.save(baseline_path, open_findings)
        print(f"sca: baseline written to {baseline_path} "
              f"({len(open_findings)} finding(s))")
        return 0

    for f in open_findings:
        hint = f"\n    hint: {f.hint}" if f.hint else ""
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}{hint}")

    if args.sarif_out:
        Path(args.sarif_out).write_text(
            sarif.render(annotated, all_rules()))

    dt = time.monotonic() - t0
    nfiles = len(analysis.corpus.files)
    status = "clean" if not open_findings else f"{len(open_findings)} finding(s)"
    print(f"sca: {status} ({n_suppressed} suppressed, {n_baselined} "
          f"baselined) — {nfiles} files, {dt:.2f}s")
    return 1 if open_findings else 0
