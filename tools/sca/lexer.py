"""Lightweight C++ lexer / preprocessor-aware scanner.

Not a parser: a single-pass character machine that classifies every byte of
a translation unit as code, comment, string/char literal, or preprocessor
directive, producing a *clean* view (comments and literal contents blanked
to spaces, newlines preserved) on which the rules can run regexes with
exact line fidelity. Raw strings (R"delim(...)delim"), escapes, and line
continuations are handled; digraphs/trigraphs are not (the tree has none).
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field


@dataclass
class ScanResult:
    clean: str                      # comments/strings blanked, same length as raw
    comments: list[tuple[int, str]] = field(default_factory=list)  # (line, text)
    includes: list[tuple[int, str, bool]] = field(default_factory=list)
    # (line, path, is_system)
    line_offsets: list[int] = field(default_factory=list)

    def line_of(self, offset: int) -> int:
        """1-based line number of a character offset into clean/raw text."""
        return bisect.bisect_right(self.line_offsets, offset)


_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*(?:"([^"]+)"|<([^>]+)>)')

_CODE, _LINE_COMMENT, _BLOCK_COMMENT, _STRING, _CHAR, _RAW_STRING = range(6)


def scan(text: str) -> ScanResult:
    n = len(text)
    out = list(text)
    comments: list[tuple[int, str]] = []
    state = _CODE
    i = 0
    line = 1
    comment_start_line = 0
    comment_buf: list[str] = []
    raw_delim = ""

    def blank(j: int) -> None:
        if out[j] != "\n":
            out[j] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == _CODE:
            if c == "/" and nxt == "/":
                state = _LINE_COMMENT
                comment_start_line = line
                comment_buf = []
                blank(i)
                blank(i + 1)
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = _BLOCK_COMMENT
                comment_start_line = line
                comment_buf = []
                blank(i)
                blank(i + 1)
                i += 2
                continue
            if c == '"':
                # Raw string?  Look back for R / u8R / LR / uR / UR.
                j = i - 1
                prefix = []
                while j >= 0 and text[j] in "RuU8L":
                    prefix.append(text[j])
                    j -= 1
                if prefix and prefix[0] == "R" and (
                        j < 0 or not (text[j].isalnum() or text[j] == "_")):
                    m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = _RAW_STRING
                        i += 1
                        continue
                state = _STRING
                i += 1
                continue
            if c == "'":
                state = _CHAR
                i += 1
                continue
            if c == "\n":
                line += 1
            i += 1
        elif state == _LINE_COMMENT:
            if c == "\\" and nxt == "\n":   # line continuation inside //
                blank(i)
                comment_buf.append(c)
                line += 1
                i += 2
                continue
            if c == "\n":
                comments.append((comment_start_line, "".join(comment_buf)))
                state = _CODE
                line += 1
                i += 1
                continue
            comment_buf.append(c)
            blank(i)
            i += 1
        elif state == _BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                comments.append((comment_start_line, "".join(comment_buf)))
                blank(i)
                blank(i + 1)
                state = _CODE
                i += 2
                continue
            if c == "\n":
                line += 1
                comment_buf.append("\n")
            else:
                comment_buf.append(c)
                blank(i)
            i += 1
        elif state == _STRING:
            if c == "\\":
                blank(i)
                if nxt == "\n":
                    line += 1
                else:
                    blank(i + 1)
                i += 2
                continue
            if c == '"':
                state = _CODE
                i += 1
                continue
            if c == "\n":   # unterminated; recover
                state = _CODE
                line += 1
                i += 1
                continue
            blank(i)
            i += 1
        elif state == _CHAR:
            if c == "\\":
                blank(i)
                blank(i + 1)
                i += 2
                continue
            if c == "'":
                state = _CODE
                i += 1
                continue
            if c == "\n":
                state = _CODE
                line += 1
                i += 1
                continue
            blank(i)
            i += 1
        else:  # _RAW_STRING
            if text.startswith(raw_delim, i):
                for k in range(len(raw_delim)):
                    blank(i + k)
                i += len(raw_delim)
                state = _CODE
                continue
            if c == "\n":
                line += 1
            else:
                blank(i)
            i += 1

    if state == _LINE_COMMENT or state == _BLOCK_COMMENT:
        comments.append((comment_start_line, "".join(comment_buf)))

    clean = "".join(out)
    offsets = [0]
    for m in re.finditer(r"\n", text):
        offsets.append(m.end())
    result = ScanResult(clean=clean, comments=comments, line_offsets=offsets)

    for lineno, raw_line in enumerate(text.split("\n"), start=1):
        m = _INCLUDE_RE.match(raw_line)
        if m:
            result.includes.append(
                (lineno, m.group(1) or m.group(2), m.group(1) is None))
    return result


def match_brace(clean: str, open_idx: int) -> int:
    """Offset one past the '}' matching the '{' at open_idx (clean text).

    Returns len(clean) on imbalance — callers treat the remainder as body.
    """
    depth = 0
    for i in range(open_idx, len(clean)):
        c = clean[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(clean)


def match_paren(clean: str, open_idx: int) -> int:
    """Offset one past the ')' matching the '(' at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(clean)):
        c = clean[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1
