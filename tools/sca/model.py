"""Source model: findings, suppressions, and the scanned file corpus."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from sca import lexer

# Inline suppression grammar (written in a // or /* */ comment):
#   sca-suppress(rule-id[, rule-id...]): reason
#   sca-suppress-file(rule-id[, rule-id...]): reason     (whole file)
# A line suppression covers findings on its own line through the next code
# line, so it can ride at end-of-line or atop the construct — including as
# the first line of a multi-line justification comment.
_SUPPRESS_RE = re.compile(
    r"sca-suppress(?P<file>-file)?\s*\(\s*(?P<rules>[^)]*)\)\s*(?::\s*(?P<reason>.*))?",
    re.S,
)


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str          # repo-relative, forward slashes
    line: int          # 1-based; 1 for whole-file findings
    message: str
    hint: str = ""

    def fingerprint_key(self) -> str:
        # Line-insensitive so pure code motion does not churn the baseline.
        return f"{self.rule}|{self.path}|{self.message}"


@dataclass
class Suppression:
    line: int
    rules: tuple[str, ...]
    reason: str
    file_level: bool
    anchor: int = 0    # last line this suppression covers (>= line)
    used: bool = False


class SourceFile:
    def __init__(self, root: Path, path: Path):
        self.abspath = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(errors="replace")
        self.scan = lexer.scan(self.text)
        self.suppressions: list[Suppression] = []
        self._parse_suppressions()

    @property
    def clean(self) -> str:
        return self.scan.clean

    def line_of(self, offset: int) -> int:
        return self.scan.line_of(offset)

    def _parse_suppressions(self) -> None:
        clean_lines = self.clean.split("\n")
        for line, text in self.scan.comments:
            for m in _SUPPRESS_RE.finditer(text):
                rules = tuple(
                    r.strip() for r in m.group("rules").split(",") if r.strip())
                reason = (m.group("reason") or "").strip()
                self.suppressions.append(Suppression(
                    line=line, rules=rules, reason=reason,
                    anchor=self._anchor(clean_lines, line),
                    file_level=m.group("file") is not None))

    @staticmethod
    def _anchor(clean_lines: list[str], line: int) -> int:
        """Last line a suppression at `line` covers: the next code line.

        End-of-line annotations (code on the suppression line itself) also
        cover the line below; comment-only lines reach past the rest of the
        justification block to the statement it documents.
        """
        if line <= len(clean_lines) and clean_lines[line - 1].strip():
            return line + 1
        j = line + 1
        while j <= len(clean_lines) and not clean_lines[j - 1].strip():
            j += 1
        return j

    def suppression_for(self, rule: str, line: int) -> Suppression | None:
        for s in self.suppressions:
            if rule not in s.rules:
                continue
            if s.file_level or s.line <= line <= s.anchor:
                return s
        return None


# Directories never scanned (relative path prefixes under the root).
EXCLUDE_PREFIXES = ("build", ".git", "tests/sca/fixtures", "tests/sca/parity")

CPP_SUFFIXES = (".cpp", ".h", ".hpp", ".cc")


def _excluded(rel: str) -> bool:
    return any(rel == p or rel.startswith(p + "/") or rel.startswith(p + "-")
               for p in EXCLUDE_PREFIXES)


class Corpus:
    """All C++ sources under the root, lexed once and shared by every rule."""

    def __init__(self, root: Path):
        self.root = root
        self.files: dict[str, SourceFile] = {}
        for path in sorted(root.rglob("*")):
            if not path.is_file() or path.suffix not in CPP_SUFFIXES:
                continue
            rel = path.relative_to(root).as_posix()
            if _excluded(rel):
                continue
            sf = SourceFile(root, path)
            self.files[rel] = sf

    def src_files(self) -> list[SourceFile]:
        return [f for rel, f in sorted(self.files.items())
                if rel.startswith("src/")]

    def get(self, rel: str) -> SourceFile | None:
        return self.files.get(rel)

    def data_files(self, pattern: str) -> list[Path]:
        """Non-C++ inputs (e.g. BENCH_*.json), honoring the exclude list."""
        out = []
        for path in sorted(self.root.rglob(pattern)):
            rel = path.relative_to(self.root).as_posix()
            if not _excluded(rel):
                out.append(path)
        return out
