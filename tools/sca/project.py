"""Project configuration: the declared invariants the rules enforce.

Defaults describe the real hpcsec tree. A fixture tree (or a downstream
fork) can override any top-level key by placing an `sca-project.json` at
its root, or via `--config FILE`.
"""

from __future__ import annotations

import json
from pathlib import Path

DEFAULTS: dict = {
    # ---- include-layer DAG (layer-dag) ------------------------------------
    # Directory under src/ -> directories it may #include from. Self-edges
    # are always allowed. The graph must be acyclic; the rule validates
    # that too. Layering story: sim < {obs, crypto} < arch < hafnium <
    # {kitten, linux_fwk} < core < {resil, cluster}; obs/check/resil are
    # observer layers with the narrow edges listed here. `obs` must never
    # see `hafnium` (call names are injected by core::Node instead).
    "layers": {
        "sim": [],
        "crypto": [],
        "obs": ["sim"],
        "arch": ["sim", "obs"],
        "hafnium": ["arch", "crypto", "obs", "sim"],
        "kitten": ["arch", "hafnium"],
        "linux_fwk": ["arch", "hafnium"],
        # workloads -> hafnium/check: the adversarial suite (attack.*) drives
        # real SPM access paths and borrows check's corruption backdoor for
        # its exploit primitive. Compute workloads must not grow such edges.
        "workloads": ["arch", "check", "hafnium", "obs", "sim"],
        "check": ["arch", "hafnium", "obs"],
        "core": ["arch", "check", "crypto", "hafnium", "kitten",
                 "linux_fwk", "obs", "sim", "workloads"],
        "resil": ["core", "hafnium", "sim"],
        "cluster": ["core", "sim", "workloads"],
    },

    # ---- ISA backend isolation (isa-portability) --------------------------
    # Include prefixes that resolve inside an ISA backend. The layer DAG
    # can't see the arch/ split (arch/arm/gic.h and arch/isa.h are both
    # layer "arch"), so isa-portability separately forbids these prefixes
    # outside src/arch/ — across the whole corpus, tests/bench included.
    "isa_backend_dirs": ["arch/arm", "arch/riscv"],

    # ---- enum/to_string coverage (enum-string-coverage) -------------------
    # Enum name -> [header declaring it, source whose to_string must cover
    # every enumerator].
    "enums": {
        "Call": ["src/hafnium/hypercall.h", "src/hafnium/hypercall.cpp"],
        "HfError": ["src/hafnium/hypercall.h", "src/hafnium/hypercall.cpp"],
        "VcpuState": ["src/hafnium/vm.h", "src/hafnium/vm.cpp"],
        "ExitReason": ["src/hafnium/vm.h", "src/hafnium/vm.cpp"],
        "VmRole": ["src/hafnium/manifest.h", "src/hafnium/manifest.cpp"],
        "Rule": ["src/check/check.h", "src/check/check.cpp"],
        "Mode": ["src/check/check.h", "src/check/check.cpp"],
        "CorruptionKind": ["src/check/corrupt.h", "src/check/corrupt.cpp"],
        "EventType": ["src/obs/events.h", "src/obs/recorder.cpp"],
        "ProfPath": ["src/obs/profiler.h", "src/obs/profiler.cpp"],
        "VmHealth": ["src/resil/resil.h", "src/resil/resil.cpp"],
        "FailureKind": ["src/resil/resil.h", "src/resil/resil.cpp"],
        "ChaosFault": ["src/resil/chaos.h", "src/resil/chaos.cpp"],
        "ContainmentPolicy": ["src/resil/contain.h", "src/resil/contain.cpp"],
        "AttackKind": ["src/workloads/attack.h", "src/workloads/attack.cpp"],
    },

    # ---- Stats completeness (stats-publish-coverage) ----------------------
    # [class, header with its nested `struct Stats`, source defining
    # <Class>::publish_metrics].
    "stats_classes": [
        ["Spm", "src/hafnium/spm.h", "src/hafnium/spm.cpp"],
        ["Supervisor", "src/resil/resil.h", "src/resil/resil.cpp"],
        ["ChaosInjector", "src/resil/chaos.h", "src/resil/chaos.cpp"],
        ["ContainmentEngine", "src/resil/contain.h", "src/resil/contain.cpp"],
        ["AdversaryWorkload", "src/workloads/attack.h",
         "src/workloads/attack.cpp"],
    ],

    # ---- dispatch table (dispatch-table-complete) -------------------------
    "dispatch": {
        "enum": "Call",
        "header": "src/hafnium/hypercall.h",
        "source": "src/hafnium/spm.cpp",
        "table": "kCallTable",
        "count_constant": "kCallCount",
    },

    # ---- guest-reachable paths (no-throw-guest-path) ----------------------
    # Entry points are the dispatch gate itself plus every handler listed in
    # the dispatch table (discovered automatically from &Spm::on_xxx rows).
    "guest_entry_functions": [
        "Spm::hypercall", "Spm::hypercall_intercepted", "Spm::dispatch",
    ],
    # Unqualified callee names too generic to resolve by name: calls to
    # these are not traversed (they are overwhelmingly std:: container
    # methods). Project methods with these names must be reached through an
    # explicit edge in `extra_call_edges` if they matter.
    "ambiguous_callees": [
        "begin", "end", "size", "empty", "clear", "find", "count", "at",
        "front", "back", "insert", "erase", "push_back", "emplace_back",
        "pop_back", "reserve", "resize", "get", "reset", "str", "c_str",
        "data", "swap", "contains", "value", "reason", "what", "first",
        "second", "min", "max", "move", "forward", "to_string",
        # `schedule` exists on EventQueue, TimerWheel and ChaosInjector;
        # name-matching would weld those class graphs together.
        "schedule",
        # `add` exists on RunningStats, LogHistogram, Sample, BenchReport
        # and MetricsAggregate; the hot-path observe() only ever reaches
        # the O(1) streaming pair, so welding them is pure noise.
        "add",
    ],
    # Extra edges "Caller::name -> Callee::name" for calls the name matcher
    # cannot see (ambiguous names, function pointers).
    "extra_call_edges": [
        # Spm::enter_vcpu calls arch::Executor::begin ("core already
        # running" guard); 'begin' is in ambiguous_callees.
        ["enter_vcpu", "Executor::begin"],
    ],

    # ---- hot-path allocation (hot-path-alloc) -----------------------------
    # The per-event dispatch loop; the hypercall-table handlers are added
    # automatically (same discovery as no-throw-guest-path).
    "hot_path_entry_functions": ["Engine::dispatch_one"],
    # std::function seams the name matcher cannot see: event closures the
    # engine dispatches and the per-core IRQ handler registration.
    "hot_path_extra_edges": [
        # engine events: timer deadlines are at_timer closures over fire().
        ["dispatch_one", "GenericTimer::fire"],
        # Core::signal_irq invokes the registered IrqHandler std::function.
        ["signal_irq", "Spm::handle_phys_irq"],
        ["signal_irq", "KittenKernel::native_irq"],
    ],

    # ---- determinism bans (det-wall-clock / det-random) -------------------
    # Identifier patterns banned under src/ (the simulator must be a pure
    # function of its seed; bench/ and tests/ may time the host).
    "wall_clock_bans": [
        ["steady_clock", "host wall-clock read"],
        ["system_clock", "host wall-clock read"],
        ["high_resolution_clock", "host wall-clock read"],
        ["clock_gettime", "host wall-clock read"],
        ["gettimeofday", "host wall-clock read"],
        ["__rdtsc", "host cycle-counter read"],
        ["getrusage", "host resource-usage read"],
    ],
    "random_bans": [
        ["random_device", "non-deterministic entropy source"],
        ["rand", "C PRNG with global hidden state"],
        ["srand", "C PRNG with global hidden state"],
        ["drand48", "C PRNG with global hidden state"],
        ["mt19937", "std engine; streams not part of the seed protocol"],
        ["mt19937_64", "std engine; streams not part of the seed protocol"],
        ["minstd_rand", "std engine; streams not part of the seed protocol"],
        ["default_random_engine", "implementation-defined engine"],
        ["uniform_int_distribution",
         "std distribution; output differs across standard libraries"],
        ["uniform_real_distribution",
         "std distribution; output differs across standard libraries"],
        ["normal_distribution",
         "std distribution; output differs across standard libraries"],
    ],
    # Files allowed to hold the one blessed PRNG implementation.
    "random_allowed_files": ["src/sim/rng.h", "src/sim/rng.cpp"],

    # ---- lock discipline (lock-discipline) --------------------------------
    # file -> { field: required lock token }: every statement writing the
    # field must sit in a function that locks the named mutex (or carry a
    # guarded-by / suppression annotation).
    "guarded_fields": {
        "src/obs/metrics.cpp": {
            "entries_": "reg_mutex_",
        },
    },

    # ---- exhaustive switches (exhaustive-switch) --------------------------
    # Functions whose switches must be exhaustive even when they carry a
    # `default:` (a default there is exactly what hides a missing case).
    "exhaustive_switch_contexts": ["to_string"],
}


def load(root: Path, config_path: str | None = None) -> dict:
    cfg = dict(DEFAULTS)
    override = Path(config_path) if config_path else root / "sca-project.json"
    if override.is_file():
        loaded = json.loads(override.read_text())
        cfg.update(loaded)
        cfg["_config_source"] = str(override)
    return cfg
