"""Rule registry: rules register themselves via the @rule decorator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from sca.model import Finding


@dataclass(frozen=True)
class Rule:
    rule_id: str
    summary: str
    hint: str
    run: Callable  # (analysis) -> Iterable[Finding]


RULES: dict[str, Rule] = {}


def rule(rule_id: str, summary: str, hint: str = ""):
    def wrap(fn: Callable) -> Callable:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, summary, hint, fn)
        return fn
    return wrap


def all_rules() -> list[Rule]:
    # Import for side effect: each module registers its rules.
    from sca import rules  # noqa: F401
    return [RULES[k] for k in sorted(RULES)]


def run_rules(analysis, selected: set[str] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    for r in all_rules():
        if selected is not None and r.rule_id not in selected:
            continue
        produced: Iterable[Finding] = r.run(analysis)
        for f in produced:
            if not f.hint and r.hint:
                f = Finding(f.rule, f.path, f.line, f.message, r.hint)
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
