"""Rule modules register themselves on import."""

from sca.rules import legacy        # noqa: F401
from sca.rules import determinism   # noqa: F401
from sca.rules import layering      # noqa: F401
from sca.rules import guest_paths   # noqa: F401
from sca.rules import locking       # noqa: F401
from sca.rules import switches      # noqa: F401
from sca.rules import hygiene       # noqa: F401
from sca.rules import hot_path_alloc  # noqa: F401
from sca.rules import isa_portability  # noqa: F401
