"""Determinism bans: anything that can break jobs=1 == jobs=N.

The simulator must be a pure function of its seed. Host clocks, ambient
PRNGs, and iteration over unordered containers that feeds exported or
merged output all violate that. bench/ and tests/ may time the host;
src/ may not.
"""

from __future__ import annotations

import re

from sca.model import Finding
from sca.registry import rule


def _ban_scan(analysis, rule_id: str, bans, allowed_files=()):
    for sf in analysis.corpus.src_files():
        if sf.rel in allowed_files:
            continue
        for ident, why in bans:
            # Negative lookbehind keeps member accesses on project types
            # (x.rand, p->rand) and longer identifiers from matching.
            for m in re.finditer(rf"(?<![\w.>]){re.escape(ident)}\b", sf.clean):
                yield Finding(rule_id, sf.rel, sf.line_of(m.start()),
                              f"{ident}: {why}")


@rule("det-wall-clock",
      "no host wall-clock/cycle-counter reads under src/",
      "derive time from sim::Engine::now(); only bench/tests may time the host")
def det_wall_clock(analysis):
    yield from _ban_scan(analysis, "det-wall-clock",
                         analysis.config["wall_clock_bans"])


@rule("det-random",
      "no ambient randomness under src/; all entropy flows through sim::Rng",
      "seed a sim::Rng (or Rng::split() a child stream) so one seed "
      "reproduces the timeline")
def det_random(analysis):
    allowed = set(analysis.config["random_allowed_files"])
    bans = analysis.config["random_bans"]
    for sf in analysis.corpus.src_files():
        if sf.rel in allowed:
            continue
        for ident, why in bans:
            pat = rf"(?<![\w.>]){re.escape(ident)}\b"
            for m in re.finditer(pat, sf.clean):
                yield Finding("det-random", sf.rel, sf.line_of(m.start()),
                              f"{ident}: {why}")


# Declaration of an unordered container variable/member. Good enough for
# this tree's style: the closing '>' of the template argument list is
# followed by the variable name.
_UNORDERED_DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<(?P<args>[^;{}]*?)>\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*(?:;|=|\{)")

_RANGE_FOR_RE = re.compile(r"\bfor\s*\(")


@rule("det-unordered-iter",
      "no iteration over unordered containers (hash order is not the seed's "
      "order and changes across libstdc++ versions)",
      "iterate a sorted copy of the keys, or keep export-feeding state in a "
      "std::map/std::vector")
def det_unordered_iter(analysis):
    # Pass 1: collect declared unordered variables across src/ (members,
    # locals, globals), remembering pointer-keyed ones for the message.
    decls: dict[str, bool] = {}
    for sf in analysis.corpus.src_files():
        for m in _UNORDERED_DECL_RE.finditer(sf.clean):
            ptr_keyed = "*" in m.group("args").split(",")[0]
            decls[m.group("name")] = decls.get(m.group("name"), False) or ptr_keyed
    if not decls:
        return
    names = "|".join(sorted(re.escape(n) for n in decls))
    range_re = re.compile(
        rf"\bfor\s*\([^();]*?:\s*[\w.\->]*\b(?P<name>{names})\s*\)")
    iter_re = re.compile(
        rf"\b(?P<name>{names})\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")
    for sf in analysis.corpus.src_files():
        for m in list(range_re.finditer(sf.clean)) + \
                list(iter_re.finditer(sf.clean)):
            name = m.group("name")
            kind = "pointer-keyed " if decls[name] else ""
            yield Finding(
                "det-unordered-iter", sf.rel, sf.line_of(m.start()),
                f"iteration over {kind}unordered container '{name}': hash "
                f"order leaks into downstream state")
