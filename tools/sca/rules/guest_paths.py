"""no-throw-guest-path: functions reachable from the hypercall dispatch
table must not contain naked throws — malformed guest input must come back
as an HfError, never as an exception unwinding through the SPM.

Reachability is an over-approximating name-matched walk from the dispatch
gate and every `&Spm::on_*` handler in the call table (see callgraph.py).
Two escape hatches, both deliberate and reviewable:

  * a call site annotated `// sca-suppress(no-throw-guest-path): reason`
    is a traversal barrier (use it where arguments are pre-validated so
    the callee's throwing paths are unreachable);
  * a throw annotated the same way is an accepted fail-stop (e.g. the
    strict-audit CheckViolation, debug-only invariant traps).
"""

from __future__ import annotations

import re

from sca.model import Finding
from sca.registry import rule

RULE = "no-throw-guest-path"

_HANDLER_REF_RE = re.compile(r"&(\w+)::(\w+)\s*>?\s*\}")
_THUNK_REF_RE = re.compile(r"invoke_thunk\s*<[^<>]*&(\w+)::(\w+)\s*>")


def _table_handlers(analysis) -> list[str]:
    cfg = analysis.config["dispatch"]
    srcf = analysis.corpus.get(cfg["source"])
    if srcf is None:
        return []
    m = re.search(cfg["table"] + r"\s*(?:\[\]|\{\{)?\s*=?\s*\{\{(.*?)\}\};",
                  srcf.clean, re.S)
    if m is None:
        return []
    body = m.group(1)
    out = []
    for cls, fn in _THUNK_REF_RE.findall(body) + _HANDLER_REF_RE.findall(body):
        if fn != "invoke_thunk":
            out.append(f"{cls}::{fn}")
    return sorted(set(out))


@rule(RULE,
      "guest-reachable SPM paths never throw",
      "return the matching HfError; if the throw is provably unreachable "
      "or a deliberate fail-stop, annotate it with "
      "sca-suppress(no-throw-guest-path) and the justification")
def no_throw_guest_path(analysis):
    cg = analysis.callgraph
    seeds: list[str] = list(analysis.config["guest_entry_functions"])
    seeds += _table_handlers(analysis)

    def barrier(sf, line) -> bool:
        return sf.suppression_for(RULE, line) is not None

    # BFS with parent pointers for the diagnostic chain.
    parent: dict[int, tuple[int | None, str]] = {}
    queue: list = []
    seen: set[int] = set()
    for qname in seeds:
        for fd in cg.resolve(qname):
            if id(fd) not in seen:
                seen.add(id(fd))
                parent[id(fd)] = (None, fd.qname)
                queue.append(fd)
    while queue:
        fd = queue.pop(0)
        for callee_name, _site in cg.callees(fd, barrier):
            for target in cg.resolve(callee_name):
                if id(target) in seen:
                    continue
                seen.add(id(target))
                parent[id(target)] = (id(fd), target.qname)
                queue.append(target)

    def chain(fd) -> str:
        names = []
        key: int | None = id(fd)
        while key is not None:
            prev, name = parent[key]
            names.append(name)
            key = prev
        return " <- ".join(names)

    reachable = sorted((fd for fd in cg.functions if id(fd) in seen),
                       key=lambda f: (f.file.rel, f.line))
    for fd in reachable:
        for off in cg.throws(fd):
            line = fd.file.line_of(off)
            yield Finding(
                RULE, fd.file.rel, line,
                f"naked throw in {fd.qname}, reachable from the hypercall "
                f"table via {chain(fd)}")
