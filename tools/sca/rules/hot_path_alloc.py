"""hot-path-alloc: the steady-state dispatch loop must stay off the heap.

Functions reachable from the engine's dispatch loop and from the hypercall
table (the per-event and per-call hot paths) must not perform global heap
allocation: no non-placement `new`, no make_unique/make_shared, and no
growing push_back/emplace_back. Long-lived state belongs in the per-trial
sim::Arena; per-event state belongs in preallocated slabs or fixed arrays
(tests/test_alloc.cpp proves the invariant end to end with a counting
global operator new).

Reachability is the same over-approximating name-matched walk as
no-throw-guest-path, seeded from `hot_path_entry_functions` plus every
`&Spm::on_*` handler in the dispatch table. std::function seams the name
matcher cannot see (event closures, the per-core IRQ handler) are bridged
by `hot_path_extra_edges`.

Escape hatches, both deliberate and reviewable:

  * a call site annotated `// sca-suppress(hot-path-alloc): reason` is a
    traversal barrier (use where the callee runs only on a cold/control
    path, e.g. boot-time construction);
  * an allocation annotated the same way is accepted (use for amortized
    growth into a container that is warmed before steady state, or for
    arena-backed containers whose allocator never touches the heap).
"""

from __future__ import annotations

import re

from sca.model import Finding
from sca.registry import rule
from sca.rules.guest_paths import _table_handlers

RULE = "hot-path-alloc"

# `new (` is placement form (arena/slab construction) and stays allowed;
# `new (std::nothrow)` would slip through this heuristic, but the project
# has no nothrow-new call sites and det-* rules keep it that way in spirit.
_NEW_RE = re.compile(r"\bnew\b(?!\s*\()")
_GROW_RE = re.compile(r"\b(make_unique|make_shared|push_back|emplace_back)\b")


@rule(RULE,
      "dispatch-loop and hypercall paths never allocate on the heap",
      "move the state into the trial arena or a preallocated slab; if the "
      "growth is warmed before steady state or the container is "
      "arena-backed, annotate it with sca-suppress(hot-path-alloc) and the "
      "justification")
def hot_path_alloc(analysis):
    cg = analysis.callgraph
    seeds: list[str] = list(analysis.config["hot_path_entry_functions"])
    seeds += _table_handlers(analysis)
    extra: dict[str, list[str]] = {}
    for src, dst in analysis.config["hot_path_extra_edges"]:
        extra.setdefault(src, []).append(dst)

    def barrier(sf, line) -> bool:
        return sf.suppression_for(RULE, line) is not None

    # BFS with parent pointers for the diagnostic chain.
    parent: dict[int, tuple[int | None, str]] = {}
    queue: list = []
    seen: set[int] = set()

    def visit(fd, from_id) -> None:
        if id(fd) in seen:
            return
        seen.add(id(fd))
        parent[id(fd)] = (from_id, fd.qname)
        queue.append(fd)

    for qname in seeds:
        for fd in cg.resolve(qname):
            visit(fd, None)
    while queue:
        fd = queue.pop(0)
        callees = [name for name, _site in cg.callees(fd, barrier)]
        callees += extra.get(fd.name, []) + extra.get(fd.qname, [])
        for callee_name in callees:
            for target in cg.resolve(callee_name):
                visit(target, id(fd))

    def chain(fd) -> str:
        names = []
        key: int | None = id(fd)
        while key is not None:
            prev, name = parent[key]
            names.append(name)
            key = prev
        return " <- ".join(names)

    reachable = sorted((fd for fd in cg.functions if id(fd) in seen),
                       key=lambda f: (f.file.rel, f.line))
    for fd in reachable:
        clean = fd.file.clean
        hits = [(m.start(), "non-placement new")
                for m in _NEW_RE.finditer(clean, fd.body_start, fd.body_end)]
        hits += [(m.start(), f"{m.group(1)} (heap growth)")
                 for m in _GROW_RE.finditer(clean, fd.body_start, fd.body_end)]
        for off, what in sorted(hits):
            yield Finding(
                RULE, fd.file.rel, fd.file.line_of(off),
                f"{what} in {fd.qname}, on the dispatch hot path via "
                f"{chain(fd)}")
