"""suppression-hygiene: suppressions are reviewable artifacts.

Every sca-suppress must name real rule ids and carry a written reason —
an unexplained suppression is indistinguishable from silencing a bug.
"""

from __future__ import annotations

from sca.model import Finding
from sca.registry import RULES, rule


@rule("suppression-hygiene",
      "every suppression names known rules and carries a justification",
      "write the reason after the colon: "
      "// sca-suppress(rule-id): why this is safe")
def suppression_hygiene(analysis):
    for rel in sorted(analysis.corpus.files):
        sf = analysis.corpus.files[rel]
        for s in sf.suppressions:
            if not s.rules:
                yield Finding("suppression-hygiene", rel, s.line,
                              "suppression lists no rule ids")
                continue
            for r in s.rules:
                if r not in RULES:
                    yield Finding("suppression-hygiene", rel, s.line,
                                  f"suppression names unknown rule '{r}'")
            if not s.reason:
                yield Finding(
                    "suppression-hygiene", rel, s.line,
                    f"suppression of {', '.join(s.rules)} has no reason")
