"""ISA portability: backend headers stay behind the arch:: seam.

The arch layer is split into an ISA-generic core plus per-ISA backends
(src/arch/arm/, src/arch/riscv/). The layer DAG cannot see the split —
both `arch/arm/gic.h` and `arch/isa.h` resolve to layer "arch" — so this
rule enforces the finer invariant: only files under src/arch/ may include
a backend header. Everyone else goes through arch::IsaOps, which is what
keeps the tree portable to a third ISA.

Unlike layer-dag this scans the whole corpus (tests, bench, examples
included): a test hard-wired to one backend silently stops covering the
other.
"""

from __future__ import annotations

from sca.model import Finding
from sca.registry import rule


@rule("isa-portability",
      "ISA backend headers are only included inside src/arch/",
      "route through arch::IsaOps (isa.h) — privilege levels, timer irq "
      "ids, page-table formats and the IrqController factory are all on "
      "the ops table; if the table is missing something, extend it rather "
      "than reaching into a backend")
def isa_portability(analysis):
    backend_dirs: list[str] = analysis.config["isa_backend_dirs"]
    for rel, sf in sorted(analysis.corpus.files.items()):
        if rel.startswith("src/arch/"):
            continue
        for line, inc, is_system in sf.scan.includes:
            if is_system:
                continue
            for backend in backend_dirs:
                if inc == backend or inc.startswith(backend + "/"):
                    yield Finding(
                        "isa-portability", rel, line,
                        f"backend header \"{inc}\" included outside "
                        f"src/arch/ — only the arch layer may see "
                        f"ISA-specific code")
