"""Include-layer DAG: src/<a>/ may only #include src/<b>/ when the declared
layer graph has the edge a -> b (self-edges implicit).

The graph itself is validated for acyclicity first — a config that smuggles
a cycle in is a finding, not silently accepted.
"""

from __future__ import annotations

from sca.model import Finding
from sca.registry import rule


def _find_cycle(layers: dict[str, list[str]]) -> list[str] | None:
    WHITE, GREY, BLACK = 0, 1, 2
    color = {k: WHITE for k in layers}
    stack: list[str] = []

    def dfs(u: str) -> list[str] | None:
        color[u] = GREY
        stack.append(u)
        for v in layers.get(u, []):
            if v not in layers:
                continue
            if color[v] == GREY:
                return stack[stack.index(v):] + [v]
            if color[v] == WHITE:
                cyc = dfs(v)
                if cyc:
                    return cyc
        stack.pop()
        color[u] = BLACK
        return None

    for k in sorted(layers):
        if color[k] == WHITE:
            cyc = dfs(k)
            if cyc:
                return cyc
    return None


@rule("layer-dag",
      "cross-subsystem includes follow the declared layer DAG",
      "either the include is wrong (route through the layer's interface) or "
      "the edge belongs in the declared graph — changing the graph is an "
      "architecture decision, make it in review")
def layer_dag(analysis):
    layers: dict[str, list[str]] = analysis.config["layers"]
    cyc = _find_cycle(layers)
    if cyc:
        yield Finding("layer-dag", "sca-project", 1,
                      "declared layer graph has a cycle: " + " -> ".join(cyc))
        return
    for sf in analysis.corpus.src_files():
        parts = sf.rel.split("/")
        if len(parts) < 3:
            continue
        subsystem = parts[1]
        for line, inc, is_system in sf.scan.includes:
            if is_system or "/" not in inc:
                continue
            target = inc.split("/")[0]
            if target == subsystem or target not in layers:
                continue
            if subsystem not in layers:
                yield Finding(
                    "layer-dag", sf.rel, line,
                    f"subsystem '{subsystem}' is not in the declared layer "
                    f"graph; add it with its allowed edges")
                break
            if target not in layers[subsystem]:
                yield Finding(
                    "layer-dag", sf.rel, line,
                    f"forbidden include edge {subsystem} -> {target} "
                    f"(#include \"{inc}\"); allowed from '{subsystem}': "
                    + (", ".join(sorted(layers[subsystem])) or "none"))
