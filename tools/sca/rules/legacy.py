"""The four checks migrated from tools/lint.py, message-for-message.

tests/sca/test_parity.py proves these report identically to the frozen
legacy script on both the clean tree and deliberately broken trees.
"""

from __future__ import annotations

import json
import math
import re

from sca.model import Finding
from sca.registry import rule


def enum_members(clean_header: str, enum: str) -> list[str]:
    m = re.search(
        r"enum\s+class\s+" + re.escape(enum) + r"\b[^{]*\{(.*?)\};",
        clean_header, flags=re.S)
    if m is None:
        return []
    return re.findall(r"\b(k[A-Za-z0-9_]+)\b\s*(?:=[^,}]*)?[,}\s]",
                      m.group(1) + ",")


def _missing(analysis, rel: str, what: str):
    return Finding("project-config", rel, 1,
                   f"configured file missing from tree ({what})")


@rule("enum-string-coverage",
      "every enumerator appears in its to_string translation unit",
      "add the missing case so logs never degrade to \"?\" silently")
def enum_string_coverage(analysis):
    for enum, (header, source) in sorted(analysis.config["enums"].items()):
        hf = analysis.corpus.get(header)
        srcf = analysis.corpus.get(source)
        if hf is None:
            yield _missing(analysis, header, f"enum {enum}")
            continue
        members = enum_members(hf.clean, enum)
        if not members:
            yield Finding("enum-string-coverage", header, 1,
                          f"enum {enum} not found (lint table stale?)")
            continue
        if srcf is None:
            yield _missing(analysis, source, f"to_string({enum})")
            continue
        for member in members:
            if not re.search(rf"\b{enum}::{member}\b", srcf.clean):
                yield Finding(
                    "enum-string-coverage", source, 1,
                    f"to_string({enum}) misses {enum}::{member}")


def stats_fields(clean_header: str) -> list[str]:
    m = re.search(r"struct\s+Stats\s*\{(.*?)\};", clean_header, re.S)
    if m is None:
        return []
    return re.findall(r"\b(\w+)\s*=\s*0\s*;", m.group(1))


@rule("stats-publish-coverage",
      "every Stats field is published by its class's publish_metrics",
      "publish the field (the obs reconciliation rules depend on it)")
def stats_publish_coverage(analysis):
    for cls, header, source in analysis.config["stats_classes"]:
        hf = analysis.corpus.get(header)
        srcf = analysis.corpus.get(source)
        if hf is None:
            yield _missing(analysis, header, f"{cls}::Stats")
            continue
        fields = stats_fields(hf.clean)
        if not fields:
            yield Finding("stats-publish-coverage", header, 1,
                          f"{cls}::Stats not found (lint table stale?)")
            continue
        if srcf is None:
            yield _missing(analysis, source, f"{cls}::publish_metrics")
            continue
        m = re.search(
            rf"void\s+{cls}::publish_metrics\s*\(\)\s*\{{(.*?)\n\}}",
            srcf.clean, re.S)
        if m is None:
            yield Finding("stats-publish-coverage", source, 1,
                          f"{cls}::publish_metrics not found")
            continue
        body = m.group(1)
        for field in fields:
            if not re.search(rf"\bstats_\.{field}\b", body):
                yield Finding(
                    "stats-publish-coverage", source, 1,
                    f"{cls}::publish_metrics does not publish Stats::{field}")


@rule("dispatch-table-complete",
      "the dispatch table has exactly one row per Call enumerator",
      "a declared but undispatchable call silently returns kInvalid to guests")
def dispatch_table_complete(analysis):
    cfg = analysis.config["dispatch"]
    header, source = cfg["header"], cfg["source"]
    enum, table = cfg["enum"], cfg["table"]
    hf = analysis.corpus.get(header)
    srcf = analysis.corpus.get(source)
    if hf is None:
        yield _missing(analysis, header, f"enum {enum}")
        return
    members = enum_members(hf.clean, enum)
    if not members:
        yield Finding("dispatch-table-complete", header, 1,
                      f"enum {enum} not found (lint table stale?)")
        return
    if srcf is None:
        yield _missing(analysis, source, table)
        return
    m = re.search(table + r"\s*(?:\[\]|\{\{)?\s*=?\s*\{\{(.*?)\}\};",
                  srcf.clean, re.S)
    if m is None:
        yield Finding("dispatch-table-complete", source, 1,
                      f"{table} not found (dispatch gate stale?)")
        return
    body = m.group(1)
    line = srcf.line_of(m.start())
    for member in members:
        rows = len(re.findall(rf"\b{enum}::{member}\b", body))
        if rows == 0:
            yield Finding(
                "dispatch-table-complete", source, line,
                f"{table} has no CallDescriptor row for {enum}::{member}")
        elif rows > 1:
            yield Finding(
                "dispatch-table-complete", source, line,
                f"{table} lists {enum}::{member} {rows} times")
    for used in sorted(set(re.findall(rf"\b{enum}::(k[A-Za-z0-9_]+)\b", body))):
        if used not in members:
            yield Finding(
                "dispatch-table-complete", source, line,
                f"{table} row references unknown {enum}::{used}")
    count = re.search(cfg["count_constant"] + r"\s*=\s*(\d+)", hf.clean)
    if count is not None and int(count.group(1)) != len(members):
        yield Finding(
            "dispatch-table-complete", header, hf.line_of(count.start()),
            f"{cfg['count_constant']} = {count.group(1)} but enum {enum} "
            f"has {len(members)} enumerators")


@rule("bench-report-schema",
      "every BENCH_*.json parses with the bench/metrics schema, no NaN/Inf",
      "the perf-trajectory tooling and CI artifact upload choke otherwise")
def bench_report_schema(analysis):
    for path in analysis.corpus.data_files("BENCH_*.json"):
        rel = path.relative_to(analysis.corpus.root).as_posix()
        try:
            doc = json.loads(path.read_text(),
                             parse_constant=lambda c: math.nan)
        except (OSError, ValueError) as err:
            yield Finding("bench-report-schema", rel, 1,
                          f"unparsable bench report ({err})")
            continue
        if not isinstance(doc, dict):
            yield Finding("bench-report-schema", rel, 1,
                          "top level is not an object")
            continue
        if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
            yield Finding("bench-report-schema", rel, 1,
                          'missing/empty "bench" name')
        rows = doc.get("metrics")
        if not isinstance(rows, list) or not rows:
            yield Finding("bench-report-schema", rel, 1,
                          'missing/empty "metrics" array')
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                yield Finding("bench-report-schema", rel, 1,
                              f"metrics[{i}] is not an object")
                continue
            if not isinstance(row.get("name"), str) or not row.get("name"):
                yield Finding("bench-report-schema", rel, 1,
                              f'metrics[{i}] missing "name"')
            for key in ("mean", "stdev", "n"):
                v = row.get(key)
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    yield Finding("bench-report-schema", rel, 1,
                                  f'metrics[{i}] missing numeric "{key}"')
                elif math.isnan(v) or math.isinf(v):
                    yield Finding("bench-report-schema", rel, 1,
                                  f'metrics[{i}] "{key}" is NaN/Inf')
