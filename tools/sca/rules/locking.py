"""lock-discipline: shared mutable state must declare its guard.

Two checks:

  1. Mutable statics (namespace-scope or function-local `static`, and
     static data members) under src/ are shared across every trial thread
     the parallel harness spawns. They must be const/constexpr/atomic/
     thread_local, be a synchronization primitive themselves, or carry a
     `// guarded-by: <what>` annotation naming the lock or ownership rule.

  2. Config-listed guarded fields (the MetricsRegistry registration
     structures): every statement that writes one must execute under the
     documented mutex — i.e. inside a function whose body locks it.
"""

from __future__ import annotations

import re

from sca.model import Finding
from sca.registry import rule

_STATIC_DECL_RE = re.compile(
    r"^[ \t]*static\s+(?P<rest>[^;{(=]*)(?P<term>[;{(=])", re.M)
_IMMUTABLE_RE = re.compile(
    r"\b(const|constexpr|constinit|atomic|mutex|once_flag|thread_local)\b")


@rule("lock-discipline",
      "shared mutable state declares its guard",
      "make it const/atomic/thread_local, or document the lock with "
      "// guarded-by: <mutex or ownership rule>")
def lock_discipline(analysis):
    for sf in analysis.corpus.src_files():
        for m in _STATIC_DECL_RE.finditer(sf.clean):
            rest = m.group("rest")
            if m.group("term") == "(":
                continue   # static function declaration/definition
            if _IMMUTABLE_RE.search(rest):
                continue
            if re.match(r"\s*(inline\s+)?(class|struct|enum|union|void)\b", rest):
                continue   # local type definitions
            line = sf.line_of(m.start("rest"))
            raw_line = sf.text.split("\n")[line - 1]
            prev_line = sf.text.split("\n")[line - 2] if line >= 2 else ""
            if "guarded-by:" in raw_line or "guarded-by:" in prev_line:
                continue
            # Function-local statics that are function *declarations* or
            # callables are rare in this tree; flag the data ones.
            name = rest.strip().split()[-1] if rest.strip() else "?"
            yield Finding(
                "lock-discipline", sf.rel, line,
                f"mutable static '{name.strip('*& ')}' without a documented "
                f"guard (shared across parallel trial threads)")

    for rel, fields in sorted(analysis.config["guarded_fields"].items()):
        sf = analysis.corpus.get(rel)
        if sf is None:
            continue
        for field_name, lock in sorted(fields.items()):
            write_re = re.compile(
                rf"\b{re.escape(field_name)}\s*(?:\.\s*(?:push_back|"
                rf"emplace_back|emplace|insert|erase|clear|resize|assign|"
                rf"pop_back)\s*\(|=[^=]|\[[^\]]*\]\s*=[^=])")
            for m in write_re.finditer(sf.clean):
                fd = analysis.callgraph.function_at(sf, m.start())
                if fd is not None and re.search(
                        rf"(?:lock_guard|unique_lock|scoped_lock)\s*"
                        rf"(?:<[^>]*>)?\s*\w*\s*[({{][^;]*\b{re.escape(lock)}\b",
                        fd.body()):
                    continue
                line = sf.line_of(m.start())
                yield Finding(
                    "lock-discipline", sf.rel, line,
                    f"write to '{field_name}' outside the documented "
                    f"'{lock}' critical section")
