"""exhaustive-switch: switches over project enums stay exhaustive.

A switch whose case labels reference a project `enum class` must name
every enumerator when it has no `default:` (the build is not -Werror, so
-Wswitch alone does not gate). Inside to_string-style functions (config
`exhaustive_switch_contexts`) missing enumerators are findings even with
a default — a default there is exactly what hides the gap behind "?".
"""

from __future__ import annotations

import re

from sca import lexer
from sca.model import Finding
from sca.registry import rule

_ENUM_DECL_RE = re.compile(r"\benum\s+class\s+(\w+)\b[^{;]*\{")
_MEMBER_RE = re.compile(r"\b(k[A-Za-z0-9_]+)\b\s*(?:=[^,}]*)?(?=[,}])")
_SWITCH_RE = re.compile(r"\bswitch\s*\(")
_CASE_RE = re.compile(r"\bcase\s+((?:\w+\s*::\s*)+)(k\w+)\s*:")
_DEFAULT_RE = re.compile(r"\bdefault\s*:")


def _project_enums(analysis) -> dict[str, list[set[str]]]:
    """enum name -> list of enumerator sets (same name may recur per layer).

    Uses brace matching for the enum body (unlike the legacy regex, which
    the configured enums are laid out to satisfy) so `enum class K {...} k;`
    member declarations do not leak into the enumerator set.
    """
    enums: dict[str, list[set[str]]] = {}
    for sf in analysis.corpus.src_files():
        for m in _ENUM_DECL_RE.finditer(sf.clean):
            open_idx = m.end() - 1
            body = sf.clean[open_idx:lexer.match_brace(sf.clean, open_idx)]
            members = set(_MEMBER_RE.findall(body))
            if members:
                enums.setdefault(m.group(1), []).append(members)
    return enums


@rule("exhaustive-switch",
      "switches over project enums cover every enumerator",
      "add the missing cases (or a default only where partial handling is "
      "the documented intent)")
def exhaustive_switch(analysis):
    enums = _project_enums(analysis)
    contexts = set(analysis.config["exhaustive_switch_contexts"])
    for sf in analysis.corpus.src_files():
        for m in _SWITCH_RE.finditer(sf.clean):
            open_paren = m.end() - 1
            close = lexer.match_paren(sf.clean, open_paren)
            if close < 0:
                continue
            brace = sf.clean.find("{", close)
            if brace < 0:
                continue
            body_end = lexer.match_brace(sf.clean, brace)
            body = sf.clean[brace:body_end]
            labels: dict[str, set[str]] = {}
            for qual, member in _CASE_RE.findall(body):
                enum_name = [p for p in re.split(r"\s*::\s*", qual) if p][-1]
                labels.setdefault(enum_name, set()).add(member)
            if len(labels) != 1:
                continue   # no project-enum labels, or mixed (weird) switch
            enum_name, used = next(iter(labels.items()))
            if enum_name not in enums:
                continue
            # Pick the declaration this switch matches: the one containing
            # all used labels (first declared wins ties).
            candidates = [s for s in enums[enum_name] if used <= s]
            if not candidates:
                continue
            members = candidates[0]
            missing = sorted(members - used)
            if not missing:
                continue
            has_default = _DEFAULT_RE.search(body) is not None
            fd = analysis.callgraph.function_at(sf, m.start())
            in_context = fd is not None and fd.name in contexts
            if has_default and not in_context:
                continue
            where = f" in {fd.qname}" if fd is not None else ""
            yield Finding(
                "exhaustive-switch", sf.rel, sf.line_of(m.start()),
                f"switch over {enum_name}{where} misses "
                + ", ".join(f"{enum_name}::{x}" for x in missing)
                + (" (default: hides the gap)" if has_default else ""))
