"""SARIF 2.1.0 writer (the subset GitHub code scanning ingests)."""

from __future__ import annotations

import json

from sca import __version__
from sca.model import Finding
from sca.registry import Rule


def render(findings: list[tuple[Finding, str | None]],
           rules: list[Rule]) -> str:
    """findings: (finding, suppression kind or None) pairs."""
    results = []
    for f, suppressed in findings:
        result = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message + (f" [hint: {f.hint}]" if f.hint else "")},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        }
        if suppressed is not None:
            result["suppressions"] = [{"kind": suppressed}]
        results.append(result)
    doc = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "hpcsec-sca",
                    "version": __version__,
                    "informationUri": "docs/ANALYSIS.md",
                    "rules": [{
                        "id": r.rule_id,
                        "shortDescription": {"text": r.summary},
                        "help": {"text": r.hint},
                    } for r in rules],
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2) + "\n"
